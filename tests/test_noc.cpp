// Unit tests for the hierarchical Ml-NoC fabric (src/noc/, docs/noc.md):
// routing pass, analytic/event fidelity, congestion accounting, and the
// bit-for-bit guarantee that analytic fidelity reproduces the
// pre-refactor flat executor totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "compile/compiler.hpp"
#include "core/executor.hpp"
#include "core/resparc.hpp"
#include "noc/fabric.hpp"
#include "noc/route.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"
#include "tech/sram.hpp"

namespace resparc {
namespace {

using core::Mapping;
using core::RunReport;
using snn::LayerSpec;
using snn::Topology;

// ---------------------------------------------------------------- fixture --

/// Small random net + traces from the functional simulator.
struct Fixture {
  Fixture(std::size_t inputs, std::size_t hidden, double activity = 0.1)
      : topo("fx", Shape3{1, 1, inputs},
             {LayerSpec::dense(hidden), LayerSpec::dense(10)}),
        net(topo) {
    Rng rng(1);
    net.init_random(rng, 1.0f);
    std::vector<std::vector<float>> images;
    for (int i = 0; i < 3; ++i) {
      std::vector<float> img(inputs);
      for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
      images.push_back(std::move(img));
    }
    snn::SimConfig cfg;
    cfg.timesteps = 16;
    snn::calibrate_thresholds(net, images, cfg, rng, activity);
    snn::Simulator sim(net, cfg);
    for (const auto& img : images) traces.push_back(sim.run(img, rng).trace);
  }
  Topology topo;
  snn::Network net;
  std::vector<snn::SpikeTrace> traces;
};

// ---------------------------------------------- pre-refactor flat replica --

std::size_t ref_nonzero_words(const snn::SpikeVector& v) {
  std::size_t n = 0;
  for (auto w : v.words())
    if (w) ++n;
  return n;
}

std::size_t ref_slice_bits(const core::InputSlice& slice,
                           const Shape3& in_shape) {
  if (slice.kind == core::SliceKind::kContiguous)
    return slice.end - slice.begin;
  return in_shape.c * (slice.y1 - slice.y0 + 1) * (slice.x1 - slice.x0 + 1);
}

std::size_t ref_active_in_slice(const core::InputSlice& slice,
                                const Shape3& in_shape,
                                const snn::SpikeVector& spikes) {
  if (slice.kind == core::SliceKind::kContiguous)
    return spikes.count_range(slice.begin, slice.end);
  std::size_t active = 0;
  for (std::size_t c = 0; c < in_shape.c; ++c) {
    for (std::size_t y = slice.y0; y <= slice.y1; ++y) {
      const std::size_t base = (c * in_shape.h + y) * in_shape.w;
      active += spikes.count_range(base + slice.x0, base + slice.x1 + 1);
    }
  }
  return active;
}

/// Byte-level transliteration of the PRE-REFACTOR Executor::run (the flat
/// kBusCyclesPerWord model this PR replaced): the acceptance gate that
/// analytic NoC fidelity reproduces its energy/latency totals bit-for-bit.
RunReport reference_flat_run(const Topology& topology, const Mapping& mapping,
                             const snn::SpikeTrace& trace) {
  const core::ResparcConfig& cfg = mapping.config;
  const tech::Technology& t = cfg.technology;
  const tech::DigitalCosts& d = t.digital;
  const tech::Memristor device{t.memristor};
  const double cell_pj = device.mean_cell_read_energy_pj();
  const double cell_off_pj = device.cell_read_energy_pj(device.g_min());
  const double sneak = device.params().sneak_leak_fraction;
  const tech::SramModel sram{
      {.capacity_bytes = cfg.input_sram_bytes, .word_bits = 64}};

  const std::size_t T = trace.timesteps();
  RunReport report;
  report.classifications = 1;
  core::EnergyBreakdown& e = report.energy;
  core::EventCounts& ev = report.events;

  double cycles_pipelined = 0.0;
  double cycles_serial = 0.0;

  for (std::size_t step = 0; step < T; ++step) {
    double stage_max = 0.0;
    {
      const snn::SpikeVector& in0 = trace.layers[0][step];
      const std::size_t total = in0.word_count();
      const std::size_t nz = ref_nonzero_words(in0);
      const std::size_t sent = cfg.event_driven ? nz : total;
      ev.sram_writes += sent;
      ev.sram_reads += sent;
      ev.bus_words += sent;
      if (cfg.event_driven) ev.bus_skips += total - nz;
      const double stage =
          core::kBusCyclesPerWord * static_cast<double>(sent);
      stage_max = std::max(stage_max, stage);
      cycles_serial += stage;
    }

    for (std::size_t l = 0; l < topology.layer_count(); ++l) {
      const snn::LayerInfo& li = topology.layers()[l];
      const core::LayerMapping& lm = mapping.layers[l];
      const snn::SpikeVector& in_vec = trace.layers[l][step];
      const snn::SpikeVector& out_vec = trace.layers[l + 1][step];

      bool layer_active = false;
      for (const core::McaGroup& g : lm.groups) {
        const std::size_t bits = ref_slice_bits(g.slice, li.in_shape);
        const std::size_t active =
            ref_active_in_slice(g.slice, li.in_shape, in_vec);
        if (active == 0 && cfg.event_driven) {
          ev.mca_skips += g.mca_count;
          continue;
        }
        layer_active = layer_active || active > 0;
        const double fraction =
            bits ? static_cast<double>(active) / static_cast<double>(bits)
                 : 0.0;
        const double driven_rows =
            fraction * static_cast<double>(g.rows_used * g.mca_count);
        const double driven_cells =
            driven_rows * static_cast<double>(cfg.mca_size);
        const double used_cells = fraction * static_cast<double>(g.synapses);
        e.crossbar_pj += used_cells * cell_pj +
                         std::max(0.0, driven_cells - used_cells) * cell_off_pj;
        if (sneak > 0.0) {
          const double total_cells =
              static_cast<double>(g.mca_count) *
              static_cast<double>(cfg.mca_size * cfg.mca_size);
          e.crossbar_pj +=
              sneak * std::max(0.0, total_cells - driven_cells) * cell_off_pj;
        }
        ev.mca_activations += g.mca_count;
        ev.buffer_bits += g.mca_count * cfg.mca_size;
        e.control_pj += static_cast<double>(g.mca_count) * d.mca_control_pj +
                        static_cast<double>(g.mca_count * cfg.mca_size) *
                            d.column_interface_pj;
        ev.neuron_integrations += g.cols_used;
      }

      ev.neuron_fires += out_vec.count();

      if ((layer_active || !cfg.event_driven) &&
          lm.ccu_transfers_per_neuron > 0)
        ev.ccu_transfers += li.neurons * lm.ccu_transfers_per_neuron;

      const std::size_t total = out_vec.word_count();
      const std::size_t nz = ref_nonzero_words(out_vec);
      const std::size_t sent = cfg.event_driven ? nz : total;
      const bool via_bus = l + 1 < topology.layer_count()
                               ? mapping.boundary_uses_bus(l + 1)
                               : true;
      if (via_bus) {
        ev.bus_words += sent;
        ev.sram_writes += sent;
        ev.sram_reads += sent;
        if (cfg.event_driven) ev.bus_skips += total - nz;
        e.control_pj += d.gcu_event_pj;
      } else {
        ev.switch_flits += sent;
        if (cfg.event_driven) ev.switch_skips += total - nz;
      }
      ev.buffer_bits += sent * (2 * static_cast<std::size_t>(t.flit_bits) + 16);

      const double compute_c =
          (layer_active || !cfg.event_driven)
              ? static_cast<double>(lm.mux_cycles) + 1.0
              : 0.0;
      const double transfer_c =
          via_bus ? core::kBusCyclesPerWord * static_cast<double>(sent)
                  : std::ceil(static_cast<double>(sent) /
                              static_cast<double>(cfg.nc_dim));
      const double stage = std::max(compute_c, transfer_c);
      stage_max = std::max(stage_max, stage);
      cycles_serial += compute_c + transfer_c;
    }

    cycles_pipelined += stage_max;
  }

  e.neuron_pj +=
      static_cast<double>(ev.neuron_integrations) * d.neuron_integrate_pj +
      static_cast<double>(ev.neuron_fires) * d.neuron_fire_pj;
  e.buffer_pj += static_cast<double>(ev.buffer_bits) * d.buffer_bit_pj;
  e.comm_pj += static_cast<double>(ev.switch_flits) * d.switch_flit_pj +
               static_cast<double>(ev.bus_words) * d.bus_word_pj +
               static_cast<double>(ev.ccu_transfers) * d.ccu_transfer_pj +
               static_cast<double>(ev.sram_reads) * sram.read_energy_pj() +
               static_cast<double>(ev.sram_writes) * sram.write_energy_pj();

  report.perf.clock_mhz = t.resparc_clock_mhz;
  report.perf.cycles_pipelined = cycles_pipelined;
  report.perf.cycles_serial = cycles_serial;

  const double leak_w =
      static_cast<double>(mapping.total_mcas * cfg.mca_size) *
          d.mca_column_leak_w +
      sram.leakage_w();
  e.leakage_pj += leak_w * report.perf.latency_pipelined_ns() * 1e3;

  return report;
}

/// Exact (bit-for-bit) equality of two reports' totals and counters.
void expect_reports_identical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.energy.neuron_pj, b.energy.neuron_pj);
  EXPECT_EQ(a.energy.crossbar_pj, b.energy.crossbar_pj);
  EXPECT_EQ(a.energy.buffer_pj, b.energy.buffer_pj);
  EXPECT_EQ(a.energy.control_pj, b.energy.control_pj);
  EXPECT_EQ(a.energy.comm_pj, b.energy.comm_pj);
  EXPECT_EQ(a.energy.leakage_pj, b.energy.leakage_pj);
  EXPECT_EQ(a.energy.total_pj(), b.energy.total_pj());
  EXPECT_EQ(a.perf.cycles_pipelined, b.perf.cycles_pipelined);
  EXPECT_EQ(a.perf.cycles_serial, b.perf.cycles_serial);
  EXPECT_EQ(a.events.mca_activations, b.events.mca_activations);
  EXPECT_EQ(a.events.mca_skips, b.events.mca_skips);
  EXPECT_EQ(a.events.bus_words, b.events.bus_words);
  EXPECT_EQ(a.events.bus_skips, b.events.bus_skips);
  EXPECT_EQ(a.events.switch_flits, b.events.switch_flits);
  EXPECT_EQ(a.events.switch_skips, b.events.switch_skips);
  EXPECT_EQ(a.events.sram_reads, b.events.sram_reads);
  EXPECT_EQ(a.events.sram_writes, b.events.sram_writes);
  EXPECT_EQ(a.events.ccu_transfers, b.events.ccu_transfers);
  EXPECT_EQ(a.events.neuron_fires, b.events.neuron_fires);
  EXPECT_EQ(a.events.neuron_integrations, b.events.neuron_integrations);
  EXPECT_EQ(a.events.buffer_bits, b.events.buffer_bits);
}

// ----------------------------------------------------------------- routes --

TEST(NocRoute, FidelityNamesRoundTrip) {
  EXPECT_EQ(noc::to_string(noc::Fidelity::kAnalytic), "analytic");
  EXPECT_EQ(noc::to_string(noc::Fidelity::kEvent), "event");
  noc::Fidelity f = noc::Fidelity::kAnalytic;
  EXPECT_TRUE(noc::parse_fidelity("event", f));
  EXPECT_EQ(f, noc::Fidelity::kEvent);
  EXPECT_TRUE(noc::parse_fidelity("analytic", f));
  EXPECT_EQ(f, noc::Fidelity::kAnalytic);
  EXPECT_FALSE(noc::parse_fidelity("cycle-accurate", f));
}

TEST(NocRoute, TreeDepthIsCeilLog2) {
  EXPECT_EQ(noc::tree_depth(1), 0u);
  EXPECT_EQ(noc::tree_depth(2), 1u);
  EXPECT_EQ(noc::tree_depth(3), 2u);
  EXPECT_EQ(noc::tree_depth(4), 2u);
  EXPECT_EQ(noc::tree_depth(5), 3u);
  EXPECT_EQ(noc::tree_depth(64), 6u);
  EXPECT_EQ(noc::tree_depth(65), 7u);
}

TEST(NocRoute, CoversEveryBoundaryWithBusTerminals) {
  Fixture fx(512, 256);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  const noc::RouteTable routes = noc::compute_routes(m);
  ASSERT_EQ(routes.size(), fx.topo.layer_count() + 1);
  // Input broadcast and final egress always cross the root bus.
  EXPECT_TRUE(routes.at(0).uses_bus);
  EXPECT_TRUE(routes.at(routes.size() - 1).uses_bus);
  const std::size_t depth = noc::tree_depth(m.total_neurocells);
  for (const noc::Route& r : routes.boundaries) {
    EXPECT_GE(r.fanout(), 1u);
    EXPECT_GE(r.src_span, 1u);
    if (r.uses_bus) {
      // Depth-0 fabrics (one NeuroCell) turn at the root with height 0.
      if (depth > 0) {
        EXPECT_GE(r.lca_height, 1u);
      }
      EXPECT_EQ(r.mesh_hops, 0u);
    } else {
      EXPECT_EQ(r.mesh_hops, m.config.nc_dim - 1);
      EXPECT_EQ(r.tree_hops, 0u);
    }
  }
}

TEST(NocRoute, UsesBusAgreesWithMappingForEveryPaperBenchmark) {
  // The routing pass must preserve the mapper's serial-bus decision for
  // every in-range boundary — that is what keeps analytic costs intact.
  for (const auto& b : snn::paper_benchmarks()) {
    for (const std::size_t mca : {64u, 128u}) {
      const Mapping m =
          core::map_network(b.topology, core::config_with_mca(mca));
      const noc::RouteTable routes = noc::compute_routes(m);
      ASSERT_EQ(routes.size(), b.topology.layer_count() + 1);
      for (std::size_t l = 0; l < b.topology.layer_count(); ++l)
        EXPECT_EQ(routes.at(l).uses_bus, m.boundary_uses_bus(l))
            << b.topology.name() << " MCA-" << mca << " boundary " << l;
    }
  }
}

TEST(NocRoute, AtThrowsOutOfRange) {
  Fixture fx(64, 32);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  const noc::RouteTable routes = noc::compute_routes(m);
  EXPECT_THROW(routes.at(routes.size()), ConfigError);
}

// ----------------------------------------------------------------- fabric --

TEST(NocFabric, AnalyticTransferMatchesFlatCharges) {
  const core::ResparcConfig cfg = core::default_config();
  noc::NocStats stats;
  noc::Route bus;
  bus.uses_bus = true;
  bus.tree_hops = 4;
  bus.lca_height = 2;
  const noc::Transport tb = noc::analytic_transfer(bus, 10, 3, cfg, stats);
  EXPECT_EQ(tb.cycles, core::kBusCyclesPerWord * 10.0);
  EXPECT_EQ(tb.stall_cycles, 0.0);
  EXPECT_EQ(stats.bus.words, 10u);
  EXPECT_EQ(stats.bus.drops, 3u);

  noc::Route mesh;
  mesh.mesh_hops = 3;
  const noc::Transport tm = noc::analytic_transfer(mesh, 10, 0, cfg, stats);
  EXPECT_EQ(tm.cycles, std::ceil(10.0 / static_cast<double>(cfg.nc_dim)));
  EXPECT_EQ(stats.mesh.hops, 30u);
}

TEST(NocFabric, ContendingRootTransfersStallInFifoOrder) {
  core::ResparcConfig cfg = core::default_config();
  noc::Fabric fabric(cfg, 8);
  noc::Route r;
  r.uses_bus = true;
  r.lca_height = noc::tree_depth(8);  // turns at the root: shared bus
  r.tree_hops = 2 * r.lca_height;
  r.src_span = 1;
  fabric.begin_step();
  const noc::Transport first = fabric.transfer(r, 10, 0, 0.0);
  EXPECT_EQ(first.stall_cycles, 0.0);
  // Same step, same arrival: the second transfer queues behind the first
  // for the full bus occupancy (ascent 10 + service 20).
  const noc::Transport second = fabric.transfer(r, 10, 0, 0.0);
  EXPECT_GT(second.stall_cycles, 0.0);
  EXPECT_GT(second.cycles, first.cycles);
  // A new step rewinds the resource clocks.
  fabric.begin_step();
  const noc::Transport fresh = fabric.transfer(r, 10, 0, 0.0);
  EXPECT_EQ(fresh.stall_cycles, 0.0);
  EXPECT_EQ(fresh.cycles, first.cycles);
}

TEST(NocFabric, SubtreeTransfersDoNotContendAcrossSubtrees) {
  core::ResparcConfig cfg = core::default_config();
  noc::Fabric fabric(cfg, 8);
  noc::Route left;
  left.uses_bus = true;
  left.src_nc = 0;
  left.dst_nc_first = left.dst_nc_last = 1;
  left.lca_height = 1;
  left.tree_hops = 2;
  noc::Route right = left;
  right.src_nc = 4;
  right.dst_nc_first = right.dst_nc_last = 5;
  fabric.begin_step();
  (void)fabric.transfer(left, 10, 0, 0.0);
  const noc::Transport other = fabric.transfer(right, 10, 0, 0.0);
  EXPECT_EQ(other.stall_cycles, 0.0);  // different subtree link
  const noc::Transport same = fabric.transfer(left, 10, 0, 0.0);
  EXPECT_GT(same.stall_cycles, 0.0);  // same subtree link: FIFO queueing
}

TEST(NocFabric, ZeroCheckDropsAreCountedOnTheSwitches) {
  core::ResparcConfig cfg = core::default_config();
  ASSERT_TRUE(cfg.event_driven);
  noc::Fabric fabric(cfg, 4);
  noc::Route r;
  r.uses_bus = true;
  r.lca_height = 2;
  r.tree_hops = 4;
  fabric.begin_step();
  (void)fabric.transfer(r, 5, 7, 0.0);
  const core::SwitchCounters totals = fabric.switch_totals();
  EXPECT_EQ(totals.forwarded, 5u);
  EXPECT_EQ(totals.dropped_zero, 7u);  // one flag: config.event_driven
  EXPECT_EQ(fabric.stats().total_drops(), 7u);

  // With the event-driven lever off the same words are forwarded: the
  // switch zero-check and the executor's accounting share the flag.
  cfg.event_driven = false;
  noc::Fabric off(cfg, 4);
  off.begin_step();
  (void)off.transfer(r, 5, 0, 0.0);
  EXPECT_EQ(off.switch_totals().dropped_zero, 0u);
  EXPECT_EQ(off.switch_totals().forwarded, 5u);
}

TEST(NocFabric, ResetClearsCountersAndClocks) {
  noc::Fabric fabric(core::default_config(), 8);
  noc::Route root;
  root.uses_bus = true;
  root.lca_height = noc::tree_depth(8);
  noc::Route subtree;  // turns below the root: exercises node_free_
  subtree.uses_bus = true;
  subtree.src_nc = 0;
  subtree.dst_nc_first = subtree.dst_nc_last = 1;
  subtree.lca_height = 1;
  subtree.tree_hops = 2;
  fabric.begin_step();
  (void)fabric.transfer(root, 5, 2, 0.0);
  (void)fabric.transfer(subtree, 5, 0, 0.0);
  fabric.reset();
  EXPECT_EQ(fabric.switch_totals().forwarded, 0u);
  EXPECT_EQ(fabric.stats().bus.words, 0u);
  EXPECT_EQ(fabric.stats().total_stall_cycles(), 0.0);
  // Every resource clock — bus AND subtree links — rewound: a transfer
  // straight after reset() sees an idle fabric.
  EXPECT_EQ(fabric.transfer(root, 5, 0, 0.0).stall_cycles, 0.0);
  EXPECT_EQ(fabric.transfer(subtree, 5, 0, 0.0).stall_cycles, 0.0);
}

TEST(NocFabric, TrafficCountersAreFidelityIndependent) {
  // Words/hops/drops describe the route, not the timing: the event
  // fabric must attribute them per level exactly like analytic_transfer,
  // including sub-root routes that only contend on a subtree link.
  const core::ResparcConfig cfg = core::default_config();
  noc::Route subtree;
  subtree.uses_bus = true;
  subtree.src_nc = 0;
  subtree.dst_nc_first = subtree.dst_nc_last = 1;
  subtree.lca_height = 1;
  subtree.tree_hops = 2;
  noc::NocStats analytic;
  (void)noc::analytic_transfer(subtree, 9, 4, cfg, analytic);
  noc::Fabric fabric(cfg, 8);
  fabric.begin_step();
  (void)fabric.transfer(subtree, 9, 4, 0.0);
  const noc::NocStats& event = fabric.stats();
  EXPECT_EQ(analytic.bus.words, event.bus.words);
  EXPECT_EQ(analytic.bus.hops, event.bus.hops);
  EXPECT_EQ(analytic.bus.drops, event.bus.drops);
  EXPECT_EQ(analytic.tree.words, event.tree.words);
  EXPECT_EQ(analytic.tree.hops, event.tree.hops);
}

TEST(NocRoute, LcaSpansTheWholeSourceLayerRange) {
  // The LCA subtree must cover the source layer's FULL cell range, not
  // just its last cell — a destination placed below the source's tail
  // (possible with custom placement strategies) still has to climb high
  // enough for the subtree to contain src.last_nc.
  Fixture fx(512, 256);
  Mapping m = core::map_network(fx.topo, core::default_config());
  ASSERT_GE(m.layers.size(), 2u);
  // Force a wide source span with a low destination: src cells 0..5,
  // dst cell 1 — the covering subtree of {0..5} needs height >= 3.
  m.total_neurocells = 8;
  m.layers[0].first_nc = 0;
  m.layers[0].last_nc = 5;
  m.layers[1].first_nc = 1;
  m.layers[1].last_nc = 1;
  const noc::RouteTable routes = noc::compute_routes(m);
  const noc::Route& r = routes.at(1);
  ASSERT_TRUE(r.uses_bus);
  EXPECT_GE(r.lca_height, 3u);
}

// --------------------------------------------- executor fidelity contract --

TEST(NocExecutor, AnalyticFidelityIsBitForBitFlatOnSmallNets) {
  Fixture fx(512, 256);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  const core::Executor ex(fx.topo, m);
  for (const auto& trace : fx.traces)
    expect_reports_identical(ex.run(trace),
                             reference_flat_run(fx.topo, m, trace));
}

TEST(NocExecutor, ProgramRoutesAndSelfRoutesAgreeBitForBit) {
  Fixture fx(256, 128);
  compile::Compiler compiler(core::default_config());
  const compile::CompiledProgram p = compiler.compile(fx.topo);
  ASSERT_FALSE(p.routes.empty());
  const core::Executor self(fx.topo, p.mapping);
  const core::Executor routed(fx.topo, p.mapping, p.routes,
                              noc::Fidelity::kAnalytic);
  for (const auto& trace : fx.traces)
    expect_reports_identical(self.run(trace), routed.run(trace));
}

TEST(NocExecutor, EventFidelityOnlyAddsLatency) {
  Fixture fx(512, 256);
  compile::Compiler compiler(core::default_config());
  const compile::CompiledProgram p = compiler.compile(fx.topo);
  const core::Executor analytic(fx.topo, p.mapping, p.routes,
                                noc::Fidelity::kAnalytic);
  const core::Executor event(fx.topo, p.mapping, p.routes,
                             noc::Fidelity::kEvent);
  const RunReport a = analytic.run_all(fx.traces);
  const RunReport e = event.run_all(fx.traces);
  EXPECT_GE(e.perf.cycles_pipelined, a.perf.cycles_pipelined);
  EXPECT_GE(e.perf.cycles_serial, a.perf.cycles_serial);
  EXPECT_GE(e.perf.cycles_stall, 0.0);
  EXPECT_EQ(a.perf.cycles_stall, 0.0);
  // Event counters (the paper's section 3.2 levers) are fidelity-free.
  EXPECT_EQ(a.events.bus_words, e.events.bus_words);
  EXPECT_EQ(a.events.switch_flits, e.events.switch_flits);
  EXPECT_EQ(a.events.mca_activations, e.events.mca_activations);
  // ... and so are the per-level NoC traffic counters.
  EXPECT_EQ(a.noc.bus.words, e.noc.bus.words);
  EXPECT_EQ(a.noc.bus.drops, e.noc.bus.drops);
  EXPECT_EQ(a.noc.tree.hops, e.noc.tree.hops);
  EXPECT_EQ(a.noc.mesh.words, e.noc.mesh.words);
  EXPECT_EQ(a.noc.mesh.hops, e.noc.mesh.hops);
  // Event fidelity charges the hierarchical hop energy on top.
  EXPECT_GE(e.energy.comm_pj, a.energy.comm_pj);
}

TEST(NocExecutor, SerialCyclesDecomposeExactly) {
  Fixture fx(256, 128);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  for (const noc::Fidelity f :
       {noc::Fidelity::kAnalytic, noc::Fidelity::kEvent}) {
    const core::Executor ex(fx.topo, m, noc::compute_routes(m), f);
    const RunReport r = ex.run(fx.traces[0]);
    EXPECT_NEAR(r.perf.cycles_serial,
                r.perf.cycles_compute + r.perf.cycles_transport +
                    r.perf.cycles_stall,
                1e-9)
        << noc::to_string(f);
  }
}

TEST(NocExecutor, DropAccountingMatchesSkipCountersInBothFidelities) {
  Fixture fx(512, 256, 0.05);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  for (const noc::Fidelity f :
       {noc::Fidelity::kAnalytic, noc::Fidelity::kEvent}) {
    const core::Executor ex(fx.topo, m, noc::compute_routes(m), f);
    const RunReport r = ex.run_all(fx.traces);
    EXPECT_EQ(r.noc.total_drops(), r.events.bus_skips + r.events.switch_skips)
        << noc::to_string(f);
    EXPECT_GT(r.noc.total_hops(), 0u);
  }
}

TEST(NocExecutor, RejectsRouteTableOfWrongSize) {
  Fixture fx(64, 32);
  const Mapping m = core::map_network(fx.topo, core::default_config());
  noc::RouteTable routes = noc::compute_routes(m);
  routes.boundaries.pop_back();
  EXPECT_THROW(
      core::Executor(fx.topo, m, routes, noc::Fidelity::kAnalytic),
      ConfigError);
}

TEST(NocApi, BackendSurfacesFidelityAndLatencyBreakdown) {
  Fixture fx(512, 256);
  api::BackendOptions options;
  options.noc = noc::Fidelity::kEvent;
  auto accel = api::make_accelerator("resparc", options);
  EXPECT_NE(accel->name().find("@event"), std::string::npos);
  accel->load(fx.topo);
  const api::ExecutionReport r = accel->execute(fx.traces);
  ASSERT_FALSE(r.latency_breakdown_ns.empty());
  const double ns_per_cycle = 1e3 / r.resparc->perf.clock_mhz;
  EXPECT_NEAR(r.bucket_ns("compute") + r.bucket_ns("transport") +
                  r.bucket_ns("noc_stall"),
              r.resparc->perf.cycles_serial * ns_per_cycle,
              1e-6 * r.resparc->perf.cycles_serial * ns_per_cycle + 1e-9);
}

TEST(NocApi, BatchedExecuteSumsNocCountersLikeSequential) {
  Fixture fx(512, 256);
  api::BackendOptions options;
  options.noc = noc::Fidelity::kEvent;
  auto accel = api::make_accelerator("resparc", options);
  accel->load(fx.topo);
  const api::ExecutionReport seq = accel->execute(fx.traces);
  const api::ExecutionReport batched =
      api::Pipeline::execute(*accel, fx.traces, 4);
  ASSERT_TRUE(batched.resparc.has_value());
  EXPECT_EQ(seq.resparc->noc.total_hops(), batched.resparc->noc.total_hops());
  EXPECT_EQ(seq.resparc->noc.total_drops(),
            batched.resparc->noc.total_drops());
  EXPECT_EQ(seq.resparc->perf.cycles_stall,
            batched.resparc->perf.cycles_stall);
  EXPECT_EQ(seq.latency_ns, batched.latency_ns);
  EXPECT_EQ(seq.bucket_ns("noc_stall"), batched.bucket_ns("noc_stall"));
}

// -------------------------------------------------- chip / program plumbing --

TEST(NocChip, EventFidelityChipReportsStallsAndNocCounters) {
  Fixture fx(512, 256);
  core::ResparcChip chip(core::default_config(), noc::Fidelity::kEvent);
  chip.load(fx.topo);
  const RunReport r = chip.execute(fx.traces);
  EXPECT_EQ(chip.fidelity(), noc::Fidelity::kEvent);
  EXPECT_GT(r.noc.total_hops(), 0u);
  EXPECT_GE(r.perf.cycles_stall, 0.0);
}

TEST(NocProgram, RoutesSurviveSerializationBitExact) {
  Fixture fx(512, 256);
  compile::Compiler compiler(core::default_config());
  const compile::CompiledProgram p = compiler.compile(fx.topo);
  std::stringstream ss;
  p.save(ss);
  const compile::CompiledProgram q =
      compile::CompiledProgram::load(ss, core::default_config());
  ASSERT_EQ(q.routes.size(), p.routes.size());
  for (std::size_t b = 0; b < p.routes.size(); ++b) {
    const noc::Route& x = p.routes.at(b);
    const noc::Route& y = q.routes.at(b);
    EXPECT_EQ(x.boundary, y.boundary);
    EXPECT_EQ(x.src_nc, y.src_nc);
    EXPECT_EQ(x.dst_nc_first, y.dst_nc_first);
    EXPECT_EQ(x.dst_nc_last, y.dst_nc_last);
    EXPECT_EQ(x.uses_bus, y.uses_bus);
    EXPECT_EQ(x.mesh_hops, y.mesh_hops);
    EXPECT_EQ(x.tree_hops, y.tree_hops);
    EXPECT_EQ(x.lca_height, y.lca_height);
    EXPECT_EQ(x.fanout(), y.fanout());
    EXPECT_EQ(x.src_span, y.src_span);
  }
}

// --------------------------------------- paper-scale bit-for-bit acceptance --

class NocPaperScale : public ::testing::TestWithParam<int> {
 protected:
  static const snn::BenchmarkSpec& spec(int index) {
    static const auto all = snn::paper_benchmarks();
    return all[static_cast<std::size_t>(index)];
  }
};

TEST_P(NocPaperScale, AnalyticReproducesFlatTotalsBitForBit) {
  const snn::BenchmarkSpec& b = spec(GetParam());
  snn::Network net(b.topology);
  Rng rng(7);
  net.init_random(rng, 0.5f);
  snn::SimConfig cfg;
  cfg.timesteps = 8;
  snn::Simulator sim(net, cfg);
  std::vector<float> img(b.topology.input_neurons());
  for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
  const snn::SpikeTrace trace = sim.run(img, rng).trace;

  const Mapping m = core::map_network(b.topology, core::default_config());
  const core::Executor ex(b.topology, m);
  expect_reports_identical(ex.run(trace),
                           reference_flat_run(b.topology, m, trace));
}

// Paper-scale MLP (0) and CNN (3): the acceptance pair of docs/noc.md.
INSTANTIATE_TEST_SUITE_P(MlpAndCnn, NocPaperScale, ::testing::Values(0, 3));

}  // namespace
}  // namespace resparc
