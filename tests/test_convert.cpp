// Unit tests for ANN->SNN conversion (train/convert.hpp).
#include "train/convert.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "snn/simulator.hpp"
#include "train/trainer.hpp"

namespace resparc::train {
namespace {

using data::Dataset;
using snn::DatasetKind;
using snn::LayerSpec;
using snn::Topology;

TEST(Convert, MaxActivationsPositive) {
  Rng rng(1);
  Ann ann(Topology("m", Shape3{1, 1, 4},
                   {LayerSpec::dense(8), LayerSpec::dense(3)}));
  ann.init_he(rng);
  std::vector<std::vector<float>> images{{0.5f, 0.5f, 0.5f, 0.5f},
                                         {1.0f, 0.0f, 1.0f, 0.0f}};
  const auto maxima = max_activations(ann, images, 1.0);
  ASSERT_EQ(maxima.size(), 2u);
  for (double m : maxima) EXPECT_GT(m, 0.0);
}

TEST(Convert, PercentileBoundsChecked) {
  Ann ann(Topology("p", Shape3{1, 1, 2}, {LayerSpec::dense(2)}));
  std::vector<std::vector<float>> images{{1.0f, 1.0f}};
  EXPECT_THROW(max_activations(ann, images, 0.0), ConfigError);
  EXPECT_THROW(max_activations(ann, images, 1.1), ConfigError);
}

TEST(Convert, ThresholdsAreOneAfterConversion) {
  Rng rng(2);
  Ann ann(Topology("t", Shape3{1, 1, 4},
                   {LayerSpec::dense(8), LayerSpec::dense(3)}));
  ann.init_he(rng);
  std::vector<std::vector<float>> images{{0.3f, 0.6f, 0.9f, 0.1f}};
  const snn::Network net = convert_to_snn(ann, images);
  EXPECT_DOUBLE_EQ(net.layer(0).neuron.v_threshold, 1.0);
  EXPECT_DOUBLE_EQ(net.layer(1).neuron.v_threshold, 1.0);
}

TEST(Convert, WeightScalingPreservesRatios) {
  // Within one layer all weights scale by the same factor, so ratios of
  // weights must be preserved exactly.
  Rng rng(3);
  Ann ann(Topology("r", Shape3{1, 1, 3}, {LayerSpec::dense(4)}));
  ann.init_he(rng);
  std::vector<std::vector<float>> images{{1.0f, 0.5f, 0.2f}};
  const snn::Network net = convert_to_snn(ann, images);
  const float a0 = ann.weights(0)(0, 0);
  const float a1 = ann.weights(0)(1, 1);
  const float s0 = net.layer(0).weights(0, 0);
  const float s1 = net.layer(0).weights(1, 1);
  ASSERT_NE(a1, 0.0f);
  ASSERT_NE(s1, 0.0f);
  EXPECT_NEAR(a0 / a1, s0 / s1, 1e-4);
}

TEST(Convert, SnnRatesTrackAnnActivations) {
  // End-to-end Diehl property: the converted SNN's output spike ranking
  // matches the ANN's logit ranking on training-like data.
  const Dataset ds = data::make_synthetic(
      DatasetKind::kMnistLike,
      {.count = 100, .seed = 4, .noise = 0.03, .jitter_pixels = 1.0});
  Ann ann(Topology("e", Shape3{1, 28, 28},
                   {LayerSpec::dense(48), LayerSpec::dense(10)}));
  Rng rng(4);
  ann.init_he(rng);
  train(ann, ds, {.epochs = 20, .batch_size = 10, .learning_rate = 0.02}, rng);

  const snn::Network net = convert_to_snn(ann, ds.images);
  snn::SimConfig cfg;
  cfg.timesteps = 64;
  cfg.record_trace = false;
  int agree = 0;
  const int n = 30;
  snn::Simulator sim(net, cfg);
  for (int i = 0; i < n; ++i) {
    const auto r = sim.run(ds.images[static_cast<std::size_t>(i)], rng);
    if (static_cast<int>(r.predicted_class) ==
        ann.predict(ds.images[static_cast<std::size_t>(i)]))
      ++agree;
  }
  EXPECT_GT(agree, n * 7 / 10);  // >70% argmax agreement
}

TEST(Convert, PoolLayersKeepUnitThreshold) {
  Rng rng(5);
  Ann ann(Topology("pp", Shape3{1, 4, 4},
                   {LayerSpec::conv(2, 3, true), LayerSpec::avg_pool(2),
                    LayerSpec::dense(3)}));
  ann.init_he(rng);
  std::vector<std::vector<float>> images{std::vector<float>(16, 0.5f)};
  const snn::Network net = convert_to_snn(ann, images);
  EXPECT_DOUBLE_EQ(net.layer(1).neuron.v_threshold, 1.0);
  EXPECT_TRUE(net.layer(1).weights.empty());
}

}  // namespace
}  // namespace resparc::train
