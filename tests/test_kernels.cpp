// Property tests for the shared kernel layer (common/kernels.hpp): every
// blocked/vectorizable kernel is compared against a naive scalar
// reference loop, bit-for-bit, across odd shapes — non-multiple-of-block
// sizes, k=1/3/5 convolutions, padded and unpadded.  Bit-for-bit is the
// right bar (not EXPECT_NEAR): the kernels' contract is a FIXED
// accumulation order, which is what keeps the dense and sparse execution
// engines identical and runs thread-count invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/kernels.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "snn/benchmarks.hpp"
#include "snn/network.hpp"
#include "snn/scatter.hpp"
#include "snn/simulator.hpp"
#include "snn/topology.hpp"

namespace resparc {
namespace {

using snn::LayerSpec;
using snn::Topology;

std::vector<float> random_vec(std::size_t n, Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

TEST(Kernels, RowAdd4MatchesSequentialRowAddsBitForBit) {
  Rng rng(1);
  for (const std::size_t n : {1u, 3u, 4u, 7u, 16u, 63u, 100u}) {
    const auto r0 = random_vec(n, rng), r1 = random_vec(n, rng),
               r2 = random_vec(n, rng), r3 = random_vec(n, rng);
    auto a = random_vec(n, rng);
    auto b = a;
    kernels::row_add(a.data(), r0.data(), n);
    kernels::row_add(a.data(), r1.data(), n);
    kernels::row_add(a.data(), r2.data(), n);
    kernels::row_add(a.data(), r3.data(), n);
    kernels::row_add4(b.data(), r0.data(), r1.data(), r2.data(), r3.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, AccumulateRowsMatchesPerRowLoopBitForBit) {
  Rng rng(2);
  for (const std::size_t cols : {1u, 5u, 64u, 97u}) {
    for (const std::size_t count : {0u, 1u, 3u, 4u, 5u, 8u, 9u, 17u}) {
      Matrix w(32, cols);
      for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
      std::vector<std::uint32_t> rows;
      for (std::size_t i = 0; i < count; ++i)
        rows.push_back(static_cast<std::uint32_t>(rng.below(32)));

      std::vector<float> naive(cols, 0.0f);
      for (const std::uint32_t r : rows) {
        const auto row = w.row(r);
        for (std::size_t c = 0; c < cols; ++c) naive[c] += row[c];
      }
      std::vector<float> fast(cols, 0.0f);
      kernels::accumulate_rows(w.flat().data(), cols, cols, rows, fast.data());
      EXPECT_EQ(naive, fast) << "cols=" << cols << " count=" << count;
    }
  }
}

TEST(Kernels, AccumulateRowsColumnSliceMatchesFullRun) {
  // The within-trace partitioning contract: a column slice accumulated
  // with the matrix stride equals the same columns of the full run.
  Rng rng(3);
  const std::size_t cols = 53;
  Matrix w(24, cols);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<std::uint32_t> rows{1, 5, 5, 9, 20, 23};
  std::vector<float> full(cols, 0.0f);
  kernels::accumulate_rows(w.flat().data(), cols, cols, rows, full.data());
  std::vector<float> sliced(cols, 0.0f);
  const std::size_t cut = 17;
  kernels::accumulate_rows(w.flat().data(), cols, cut, rows, sliced.data());
  kernels::accumulate_rows(w.flat().data() + cut, cols, cols - cut, rows,
                           sliced.data() + cut);
  EXPECT_EQ(full, sliced);
}

TEST(Kernels, MatvecInMajorMatchesNaiveBitForBit) {
  Rng rng(4);
  for (const auto& [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1}, {7, 5}, {64, 64},
        {100, 33}, {33, 100}}) {
    Matrix w(rows, cols);
    for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
    auto x = random_vec(rows, rng, 0.0, 1.0);
    if (rows > 2) x[rows / 2] = 0.0f;  // exercise the zero-skip path

    std::vector<float> naive(cols, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
      if (x[r] == 0.0f) continue;
      for (std::size_t c = 0; c < cols; ++c) naive[c] += x[r] * w(r, c);
    }
    std::vector<float> fast(cols, 1.0f);  // must be overwritten
    kernels::matvec_in_major(w.flat().data(), rows, cols, x.data(),
                             fast.data());
    EXPECT_EQ(naive, fast) << rows << "x" << cols;
  }
}

TEST(Kernels, MatvecOutMajorMatchesNaiveBitForBit) {
  Rng rng(5);
  const std::size_t rows = 37, cols = 41;
  Matrix w(rows, cols);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const auto x = random_vec(cols, rng);
  std::vector<float> naive(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += w(r, c) * x[c];
    naive[r] = acc;
  }
  std::vector<float> fast(rows);
  kernels::matvec_out_major(w.flat().data(), rows, cols, x.data(),
                            fast.data());
  EXPECT_EQ(naive, fast);
}

// Naive bounds-checked conv (the loop nest train::Ann used before the
// kernel layer) — the reference every conv case is compared against.
void naive_conv(const float* in, std::size_t ic, std::size_t ih,
                std::size_t iw, const Matrix& w, std::size_t oc_n,
                std::size_t k, std::size_t pad, std::size_t oh,
                std::size_t ow, float* out) {
  for (std::size_t oc = 0; oc < oc_n; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < ic; ++c) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                      static_cast<std::ptrdiff_t>(pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              acc += in[(c * ih + static_cast<std::size_t>(iy)) * iw +
                        static_cast<std::size_t>(ix)] *
                     w((c * k + ky) * k + kx, oc);
            }
          }
        }
        out[(oc * oh + oy) * ow + ox] = acc;
      }
    }
  }
}

struct ConvCase {
  std::size_t ic, ih, iw, oc, k;
  bool same;
};

TEST(Kernels, ConvForwardMatchesNaiveAcrossOddShapes) {
  // Odd shapes on purpose: patch sizes straddling the GEMM block (48),
  // k=1/3/5, padded and unpadded, non-square images.
  const ConvCase cases[] = {
      {1, 5, 5, 1, 1, false},   // degenerate 1x1
      {3, 9, 9, 5, 3, true},    // patch 27 < block
      {7, 8, 6, 4, 3, true},    // patch 63, non-square
      {6, 11, 11, 3, 3, false}, // valid conv, patch 54 > block
      {2, 13, 7, 9, 5, true},   // k=5, patch 50
      {4, 7, 7, 2, 5, false},   // k=5 valid, output 3x3
      {52, 14, 14, 64, 3, true} // the paper-scale MNIST-CNN layer
  };
  Rng rng(6);
  for (const ConvCase& cc : cases) {
    const std::size_t pad = cc.same ? cc.k / 2 : 0;
    const std::size_t oh = cc.same ? cc.ih : cc.ih - cc.k + 1;
    const std::size_t ow = cc.same ? cc.iw : cc.iw - cc.k + 1;
    const auto in = random_vec(cc.ic * cc.ih * cc.iw, rng, 0.0, 1.0);
    Matrix w(cc.ic * cc.k * cc.k, cc.oc);
    for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 0.5));

    std::vector<float> naive(cc.oc * oh * ow, -1.0f);
    naive_conv(in.data(), cc.ic, cc.ih, cc.iw, w, cc.oc, cc.k, pad, oh, ow,
               naive.data());
    std::vector<float> fast(cc.oc * oh * ow, 1.0f);
    kernels::Scratch scratch;
    kernels::conv2d_forward(in.data(), cc.ic, cc.ih, cc.iw, w.flat().data(),
                            cc.oc, cc.k, pad, oh, ow, fast.data(), scratch);
    EXPECT_EQ(naive, fast) << cc.ic << "x" << cc.ih << "x" << cc.iw << " k"
                           << cc.k << (cc.same ? " same" : " valid");
  }
}

TEST(Kernels, Im2colZeroFillsOutOfImageTaps) {
  // 1x2x2 input, k=3 same padding: every patch row is one tap; corners
  // must be zero-filled exactly where the tap leaves the image.
  const float in[] = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> col(9 * 4, -1.0f);
  kernels::im2col(in, 1, 2, 2, 3, 1, 2, 2, col.data());
  // Tap (ky=1, kx=1) is the identity: row 4 equals the image.
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);
  EXPECT_EQ(col[4 * 4 + 3], 4.0f);
  // Tap (ky=0, kx=0) reads up-left: only output (1,1) sees pixel (0,0).
  EXPECT_EQ(col[0 * 4 + 0], 0.0f);
  EXPECT_EQ(col[0 * 4 + 1], 0.0f);
  EXPECT_EQ(col[0 * 4 + 2], 0.0f);
  EXPECT_EQ(col[0 * 4 + 3], 1.0f);
}

TEST(Kernels, ScatterAccumulatePartitionInvariant) {
  // Every layer kind, odd sizes: the partitioned scatter must reassemble
  // the serial result bit-for-bit for any partition count.
  const Topology topo("scatter", Shape3{3, 8, 8},
                      {LayerSpec::conv(5, 3, true), LayerSpec::avg_pool(2),
                       LayerSpec::dense(23)});
  snn::Network net(topo);
  Rng rng(7);
  net.init_random(rng, 1.0f);

  for (std::size_t l = 0; l < topo.layer_count(); ++l) {
    const auto& li = topo.layers()[l];
    std::vector<std::uint32_t> active;
    for (std::size_t i = 0; i < li.in_shape.size(); i += 3)
      active.push_back(static_cast<std::uint32_t>(i));
    std::vector<float> serial(li.neurons, 0.0f);
    snn::scatter_accumulate(li, net.layer(l).weights, active, serial);
    for (const std::size_t parts : {2u, 3u, 7u}) {
      std::vector<float> split(li.neurons, 0.0f);
      for (std::size_t p = 0; p < parts; ++p)
        snn::scatter_accumulate(li, net.layer(l).weights, active, split, p,
                                parts);
      EXPECT_EQ(serial, split) << "layer " << l << " parts " << parts;
    }
  }
}

TEST(Kernels, ReusedSimulatorMatchesFreshBitForBit) {
  // The allocation-free steady state reuses one Simulator across
  // presentations; the trace must equal a fresh simulator's exactly, in
  // both engines.
  const Topology topo = snn::small_cnn_topology(snn::DatasetKind::kMnistLike);
  snn::Network net(topo);
  Rng wrng(8);
  net.init_random(wrng, 1.0f);
  net.set_uniform_threshold(1.5);

  std::vector<float> img_a(topo.input_shape().size());
  std::vector<float> img_b(topo.input_shape().size());
  for (auto& p : img_a) p = static_cast<float>(wrng.uniform(0.0, 1.0));
  for (auto& p : img_b) p = static_cast<float>(wrng.uniform(0.0, 1.0));

  for (const auto mode :
       {snn::ExecutionMode::kDense, snn::ExecutionMode::kSparse}) {
    snn::SimConfig cfg;
    cfg.timesteps = 6;
    cfg.mode = mode;
    snn::Simulator reused(net, cfg);
    Rng r1(9);
    (void)reused.run(img_a, r1);
    const snn::SimResult second = reused.run(img_b, r1);

    snn::Simulator fresh(net, cfg);
    Rng r2(9);
    (void)fresh.run(img_a, r2);
    const snn::SimResult expect = fresh.run(img_b, r2);

    EXPECT_EQ(second.output_spike_counts, expect.output_spike_counts);
    EXPECT_EQ(second.total_spikes, expect.total_spikes);
    ASSERT_EQ(second.trace.layers.size(), expect.trace.layers.size());
    for (std::size_t l = 0; l < expect.trace.layers.size(); ++l) {
      for (std::size_t t = 0; t < expect.trace.layers[l].size(); ++t) {
        const auto got = second.trace.layers[l][t].words();
        const auto want = expect.trace.layers[l][t].words();
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                               want.end()))
            << "mode " << to_string(mode) << " layer " << l << " t " << t;
      }
    }
  }
}

}  // namespace
}  // namespace resparc
