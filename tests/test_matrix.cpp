// Unit tests for Matrix (common/matrix.hpp).
#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5f);
  EXPECT_EQ(m(1, 1), 1.5f);
}

TEST(Matrix, FlatConstructorChecksSize) {
  EXPECT_THROW(Matrix(2, 3, std::vector<float>{1, 2}), ShapeError);
  Matrix m(2, 2, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(m(0, 1), 2.0f);
  EXPECT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  m(1, 2) = 9.0f;
  EXPECT_EQ(m.flat()[5], 9.0f);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ShapeError);
  EXPECT_THROW(m.at(0, 2), ShapeError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[0] = 4.0f;
  EXPECT_EQ(m(1, 0), 4.0f);
  EXPECT_EQ(row.size(), 3u);
}

TEST(Matrix, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.fill(7.0f);
  EXPECT_EQ(m(0, 0), 7.0f);
  EXPECT_EQ(m(1, 1), 7.0f);
}

TEST(Matrix, EqualityIsValueBased) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b(0, 0) = 2.0f;
  EXPECT_NE(a, b);
}

TEST(MatVec, ComputesInMajorProduct) {
  // W is 3x2 (inputs x outputs): out = x^T W.
  Matrix w(3, 2, std::vector<float>{1, 2, 3, 4, 5, 6});
  std::vector<float> x{1.0f, 0.5f, 2.0f};
  std::vector<float> out(2);
  matvec_in_major(w, x, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f * 1 + 0.5f * 3 + 2.0f * 5);
  EXPECT_FLOAT_EQ(out[1], 1.0f * 2 + 0.5f * 4 + 2.0f * 6);
}

TEST(MatVec, SkipsZeroInputs) {
  Matrix w(2, 1, std::vector<float>{10, 20});
  std::vector<float> x{0.0f, 1.0f};
  std::vector<float> out(1);
  matvec_in_major(w, x, out);
  EXPECT_FLOAT_EQ(out[0], 20.0f);
}

TEST(MatVec, ThrowsOnMismatch) {
  Matrix w(2, 2);
  std::vector<float> x{1.0f};
  std::vector<float> out(2);
  EXPECT_THROW(matvec_in_major(w, x, out), ShapeError);
}

}  // namespace
}  // namespace resparc
