// Unit tests for technology-aware MCA size selection (core/techaware.hpp).
#include "core/techaware.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

std::vector<snn::SpikeTrace> traces_for(const Topology& topo, int n_images,
                                        double activity = 0.1) {
  snn::Network net(topo);
  Rng rng(1);
  net.init_random(rng, 1.0f);
  std::vector<std::vector<float>> images;
  for (int i = 0; i < n_images; ++i) {
    std::vector<float> img(topo.input_shape().size());
    for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
    images.push_back(std::move(img));
  }
  snn::SimConfig cfg;
  cfg.timesteps = 10;
  snn::calibrate_thresholds(net, images, cfg, rng, activity);
  snn::Simulator sim(net, cfg);
  std::vector<snn::SpikeTrace> traces;
  for (const auto& img : images) traces.push_back(sim.run(img, rng).trace);
  return traces;
}

TEST(TechAware, PermissibleSizesShrinkWithWireResistance) {
  const std::vector<std::size_t> sizes{32, 64, 128, 256, 512};
  const tech::Technology t = tech::default_technology();
  // Generous floor: everything passes with ideal wires.
  const auto ideal = permissible_sizes(sizes, t, 0.0, 0.9);
  EXPECT_EQ(ideal.size(), sizes.size());
  // Resistive wires: large arrays drop out first.
  const auto constrained = permissible_sizes(sizes, t, 20.0, 0.9);
  EXPECT_LT(constrained.size(), sizes.size());
  for (std::size_t i = 1; i < constrained.size(); ++i)
    EXPECT_GT(constrained[i], constrained[i - 1]);
  // The surviving set is a prefix (small sizes survive).
  for (std::size_t n : constrained) EXPECT_LE(n, 256u);
}

TEST(TechAware, ExploreReturnsAllCandidates) {
  const Topology topo("e", Shape3{1, 1, 128},
                      {LayerSpec::dense(128), LayerSpec::dense(10)});
  const auto traces = traces_for(topo, 2);
  const std::vector<std::size_t> sizes{32, 64, 128};
  const TechAwareResult r =
      explore_mca_sizes(topo, traces, default_config(), sizes);
  ASSERT_EQ(r.candidates.size(), 3u);
  for (const auto& c : r.candidates) {
    EXPECT_GT(c.energy_pj, 0.0);
    EXPECT_GT(c.latency_ns, 0.0);
    EXPECT_GT(c.mca_count, 0u);
  }
  EXPECT_LT(r.best_index, 3u);
  EXPECT_LE(r.best().energy_pj, r.candidates[0].energy_pj);
  EXPECT_LE(r.best().energy_pj, r.candidates[2].energy_pj);
}

TEST(TechAware, MlpPrefersLargerArrays) {
  // Fig. 12(a): for dense MLPs, bigger crossbars amortise peripherals.
  const Topology topo("mlp", Shape3{1, 1, 512},
                      {LayerSpec::dense(512), LayerSpec::dense(10)});
  const auto traces = traces_for(topo, 2);
  const std::vector<std::size_t> sizes{32, 128};
  const TechAwareResult r =
      explore_mca_sizes(topo, traces, default_config(), sizes);
  EXPECT_EQ(r.best().mca_size, 128u);
}

TEST(TechAware, RejectsEmptyInputs) {
  const Topology topo("x", Shape3{1, 1, 8}, {LayerSpec::dense(4)});
  const auto traces = traces_for(topo, 1);
  EXPECT_THROW(
      explore_mca_sizes(topo, traces, default_config(), std::vector<std::size_t>{}),
      ConfigError);
  EXPECT_THROW(explore_mca_sizes(topo, {}, default_config(),
                                 std::vector<std::size_t>{64}),
               ConfigError);
}

}  // namespace
}  // namespace resparc::core
