// Unit tests for the memristive device model (tech/memristor.hpp).
#include "tech/memristor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::tech {
namespace {

TEST(Memristor, PaperParameterRange) {
  // Section 4.2: 20 kOhm - 200 kOhm, 16 levels (4 bits), Vdd/2 read.
  const Memristor m{pcm_params()};
  EXPECT_DOUBLE_EQ(m.g_max(), 1.0 / 20e3);
  EXPECT_DOUBLE_EQ(m.g_min(), 1.0 / 200e3);
  EXPECT_EQ(m.levels(), 16);
  EXPECT_DOUBLE_EQ(m.params().read_voltage_v, 0.5);
}

TEST(Memristor, ValidationRejectsBadRanges) {
  MemristorParams p = pcm_params();
  p.r_on_ohm = -1.0;
  EXPECT_THROW(Memristor{p}, ConfigError);
  p = pcm_params();
  p.r_off_ohm = p.r_on_ohm;  // must exceed R_on
  EXPECT_THROW(Memristor{p}, ConfigError);
  p = pcm_params();
  p.bits = 0;
  EXPECT_THROW(Memristor{p}, ConfigError);
  p = pcm_params();
  p.bits = 9;
  EXPECT_THROW(Memristor{p}, ConfigError);
}

TEST(Memristor, QuantizeEndpointsExact) {
  const Memristor m{pcm_params()};
  EXPECT_DOUBLE_EQ(m.quantize_magnitude(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.quantize_magnitude(1.0), 1.0);
}

TEST(Memristor, QuantizeClampsOutOfRange) {
  const Memristor m{pcm_params()};
  EXPECT_DOUBLE_EQ(m.quantize_magnitude(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.quantize_magnitude(1.5), 1.0);
}

TEST(Memristor, QuantizeStepCount) {
  // 4 bits -> 16 levels -> 15 steps of 1/15.
  const Memristor m{pcm_params()};
  const double step = 1.0 / 15.0;
  EXPECT_NEAR(m.quantize_magnitude(step * 0.49), 0.0, 1e-12);
  EXPECT_NEAR(m.quantize_magnitude(step * 0.51), step, 1e-12);
}

TEST(Memristor, QuantizeIsIdempotent) {
  const Memristor m{pcm_params()};
  for (double v : {0.1, 0.33, 0.77, 0.99}) {
    const double q = m.quantize_magnitude(v);
    EXPECT_DOUBLE_EQ(m.quantize_magnitude(q), q);
  }
}

TEST(Memristor, ConductanceMonotoneInMagnitude) {
  const Memristor m{pcm_params()};
  double prev = -1.0;
  for (int i = 0; i <= 15; ++i) {
    const double g = m.conductance(i / 15.0);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Memristor, ConductanceBounds) {
  const Memristor m{pcm_params()};
  EXPECT_DOUBLE_EQ(m.conductance(0.0), m.g_min());
  EXPECT_DOUBLE_EQ(m.conductance(1.0), m.g_max());
}

TEST(Memristor, CellReadEnergyMatchesFormula) {
  const Memristor m{pcm_params()};
  // E = V^2 G t = 0.25 * 50e-6 S * 1 ns = 12.5 fJ = 0.0125 pJ at G_on.
  EXPECT_NEAR(m.cell_read_energy_pj(m.g_max()), 0.0125, 1e-9);
}

TEST(Memristor, MeanCellEnergyBetweenExtremes) {
  const Memristor m{pcm_params()};
  const double mean = m.mean_cell_read_energy_pj();
  EXPECT_GT(mean, m.cell_read_energy_pj(m.g_min()));
  EXPECT_LT(mean, m.cell_read_energy_pj(m.g_max()));
}

TEST(Memristor, AgSiLowerReadEnergy) {
  // Ag-Si devices are more resistive -> lower read energy than PCM.
  const Memristor pcm{pcm_params()};
  const Memristor agsi{agsi_params()};
  EXPECT_LT(agsi.mean_cell_read_energy_pj(), pcm.mean_cell_read_energy_pj());
}

class MemristorBits : public ::testing::TestWithParam<int> {};

TEST_P(MemristorBits, LevelsArePowerOfTwo) {
  MemristorParams p = pcm_params();
  p.bits = GetParam();
  const Memristor m{p};
  EXPECT_EQ(m.levels(), 1 << GetParam());
  // Quantising a fine ramp yields exactly `levels` distinct values.
  int distinct = 1;
  double prev = m.quantize_magnitude(0.0);
  for (int i = 1; i <= 4096; ++i) {
    const double q = m.quantize_magnitude(i / 4096.0);
    if (q != prev) {
      ++distinct;
      prev = q;
    }
  }
  EXPECT_EQ(distinct, m.levels());
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, MemristorBits,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace resparc::tech
