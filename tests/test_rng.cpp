// Unit tests for the deterministic RNG (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace resparc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo = lo || v == -3;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace resparc
