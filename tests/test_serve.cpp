// The multi-tenant serving subsystem (src/serve, docs/serving.md): RS-*
// error codes asserted by Error::code(), warm/corrupt program-cache
// behaviour with its hit counters, per-session ordered delivery, batch-
// window invariance of per-request results, cross-session determinism
// under co-tenant load, and the latency recorder's HDR quantiles.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "compile/program.hpp"
#include "core/config.hpp"
#include "serve/latency.hpp"
#include "serve/program_cache.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::serve {
namespace {

/// Shared small workload: a calibrated network with several traced
/// presentations, built once for the whole suite (compiles are slow).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::PipelineOptions opt;
    opt.images = 6;
    opt.timesteps = 8;
    opt.seed = 11;
    opt.threads = 1;
    workload_ = new api::Workload(
        api::Pipeline(opt)
            .dataset(snn::DatasetKind::kMnistLike)
            .topology(snn::small_mlp_topology(snn::DatasetKind::kMnistLike))
            .run());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  /// A trace-replay tenant over the shared workload's topology.
  static TenantSpec trace_tenant() {
    TenantSpec spec;
    spec.backend = "resparc-64";
    spec.topology = workload_->topology();
    return spec;
  }

  /// A raw-image tenant: same topology plus the calibrated network and
  /// the simulation settings the workload's traces were recorded with.
  static TenantSpec image_tenant() {
    TenantSpec spec = trace_tenant();
    spec.network = workload_->network;
    spec.sim.timesteps = 8;
    return spec;
  }

  static const snn::SpikeTrace& trace(std::size_t i) {
    return workload_->traces[i % workload_->traces.size()];
  }
  static const std::vector<float>& image(std::size_t i) {
    return workload_->test.images[i % workload_->test.images.size()];
  }

  static api::Workload* workload_;
};

api::Workload* ServeTest::workload_ = nullptr;

/// Runs `fn`, returning the ServeError code it throws ("" when it does
/// not throw a ServeError).
template <typename Fn>
std::string code_of(Fn&& fn) {
  try {
    fn();
  } catch (const ServeError& e) {
    return e.code();
  } catch (...) {
  }
  return "";
}

/// A per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "resparc_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ----------------------------------------------------------- error codes --

TEST_F(ServeTest, ErrorCodesAreStable) {
  Server server({.replicas = 1, .dispatchers = 1, .queue_capacity = 2});
  server.add_tenant("t", trace_tenant());

  EXPECT_EQ(code_of([&] { server.add_tenant("t", trace_tenant()); }),
            kErrDuplicateTenant);
  EXPECT_EQ(code_of([&] { server.open_session("nope"); }), kErrUnknownTenant);
  EXPECT_EQ(code_of([&] { server.submit(999, {.trace = trace(0)}); }),
            kErrUnknownSession);

  const SessionId s = server.open_session("t");
  EXPECT_EQ(code_of([&] { server.submit(s, {}); }), kErrEmptyRequest);
  // The trace tenant has no network bound, so raw images are refused.
  EXPECT_EQ(code_of([&] { server.submit(s, {.image = image(0)}); }),
            kErrNoNetwork);

  server.close_session(s);
  EXPECT_FALSE(server.sessions().is_open(s));
  EXPECT_EQ(code_of([&] { server.submit(s, {.trace = trace(0)}); }),
            kErrUnknownSession);
  EXPECT_EQ(code_of([&] { server.close_session(s); }), kErrUnknownSession);

  server.shutdown();
  EXPECT_EQ(code_of([&] { server.open_session("t"); }), kErrShutdown);
  EXPECT_EQ(code_of([&] { server.add_tenant("t2", trace_tenant()); }),
            kErrShutdown);
}

TEST_F(ServeTest, FullQueueRejectsWithCode) {
  // A huge batch_max + window means nothing dispatches until shutdown,
  // so the queue deterministically fills.
  Server server({.replicas = 1,
                 .dispatchers = 1,
                 .queue_capacity = 3,
                 .batch_max = 100,
                 .batch_window = std::chrono::microseconds(10'000'000)});
  server.add_tenant("t", trace_tenant());
  const SessionId s = server.open_session("t");

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(server.submit(s, {.trace = trace(i)}));
  EXPECT_EQ(code_of([&] { server.submit(s, {.trace = trace(3)}); }),
            kErrQueueFull);
  EXPECT_EQ(server.stats().rejected, 1u);

  // Shutdown still executes the admitted requests before stopping.
  server.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(server.stats().completed, 3u);
}

// --------------------------------------------------------- program cache --

TEST(ProgramCacheKey, DiscriminatesEveryTripleComponent) {
  const auto config = core::default_config();
  const auto topo_a = snn::small_mlp_topology(snn::DatasetKind::kMnistLike);
  const auto topo_b = snn::small_mlp_topology(snn::DatasetKind::kSvhnLike);
  const std::uint64_t base =
      compile::program_cache_key(config, topo_a, "paper");
  EXPECT_EQ(base, compile::program_cache_key(config, topo_a, "paper"));
  EXPECT_NE(base, compile::program_cache_key(config, topo_a, "greedy-pack"));
  EXPECT_NE(base, compile::program_cache_key(config, topo_b, "paper"));
  const core::ResparcConfig other = core::config_with_mca(config.mca_size / 2);
  EXPECT_NE(base, compile::program_cache_key(other, topo_a, "paper"));
}

TEST_F(ServeTest, ProgramCacheWarmRestartSkipsRecompile) {
  const std::string dir = scratch_dir("warm");
  const auto config = core::default_config();
  const auto topology = workload_->topology();

  ProgramCache first({.directory = dir});
  first.get_or_compile(config, topology, "paper");
  EXPECT_EQ(first.stats().misses, 1u);
  // Same triple again: served from the in-memory LRU.
  first.get_or_compile(config, topology, "paper");
  EXPECT_EQ(first.stats().memory_hits, 1u);
  EXPECT_EQ(first.stats().misses, 1u);

  // A fresh cache over the same directory (= a restarted server)
  // rehydrates the persisted blob instead of compiling.
  ProgramCache second({.directory = dir});
  second.get_or_compile(config, topology, "paper");
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(second.stats().misses, 0u);
}

TEST_F(ServeTest, CorruptBlobIsEvictedAndRecompiledTransparently) {
  const std::string dir = scratch_dir("corrupt");
  const auto config = core::default_config();
  const auto topology = workload_->topology();

  ProgramCache first({.directory = dir});
  first.get_or_compile(config, topology, "paper");
  const std::string path =
      first.blob_path(compile::program_cache_key(config, topology, "paper"));
  ASSERT_TRUE(std::filesystem::exists(path));

  // Tamper with the persisted blob: flip its payload to garbage.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "RESPARC-PROGRAM v1\nthis blob has been tampered with\n";
  }

  // A restarted cache must reject the blob on rehydrate, evict it, and
  // recompile without surfacing any error to the caller.
  ProgramCache second({.directory = dir});
  auto program = second.get_or_compile(config, topology, "paper");
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(second.stats().corrupt_evictions, 1u);
  EXPECT_EQ(second.stats().disk_hits, 0u);
  EXPECT_EQ(second.stats().misses, 1u);
  EXPECT_FALSE(second.last_corruption_code().empty());
  // The eviction removed the bad blob and the recompile re-persisted a
  // good one: a third cache rehydrates cleanly.
  ProgramCache third({.directory = dir});
  EXPECT_NO_THROW(third.rehydrate(config, topology, "paper"));
  EXPECT_EQ(third.stats().disk_hits, 1u);
}

TEST_F(ServeTest, RehydrateReportsCorruptionByCode) {
  const std::string dir = scratch_dir("rehydrate");
  const auto config = core::default_config();
  const auto topology = workload_->topology();

  ProgramCache cache({.directory = dir});
  // No blob yet: rehydrate refuses (only get_or_compile compiles).
  EXPECT_EQ(code_of([&] { cache.rehydrate(config, topology, "paper"); }),
            kErrCacheCorrupt);

  cache.get_or_compile(config, topology, "paper");
  const std::string path =
      cache.blob_path(compile::program_cache_key(config, topology, "paper"));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage\n";
  }
  cache.clear_memory();
  EXPECT_EQ(code_of([&] { cache.rehydrate(config, topology, "paper"); }),
            kErrCacheCorrupt);
  EXPECT_EQ(cache.stats().corrupt_evictions, 1u);
}

TEST_F(ServeTest, ServerRestartUsesWarmCache) {
  const std::string dir = scratch_dir("server_warm");
  ServerConfig cfg;
  cfg.replicas = 2;
  cfg.dispatchers = 1;
  cfg.cache.directory = dir;
  {
    Server server(cfg);
    server.add_tenant("t", trace_tenant());
    // Two replicas, one compile: the second load is a memory hit.
    EXPECT_EQ(server.program_cache().stats().misses, 1u);
    EXPECT_EQ(server.program_cache().stats().memory_hits, 1u);
  }
  {
    Server server(cfg);
    server.add_tenant("t", trace_tenant());
    // The restarted server rehydrates from disk: zero compiles.
    EXPECT_EQ(server.program_cache().stats().misses, 0u);
    EXPECT_EQ(server.program_cache().stats().disk_hits, 1u);
    EXPECT_EQ(server.program_cache().stats().memory_hits, 1u);
    const SessionId s = server.open_session("t");
    EXPECT_NO_THROW(server.submit(s, {.trace = trace(0)}).get());
  }
}

// ------------------------------------------------------- ordered delivery --

TEST_F(ServeTest, ResponsesDeliverInPerSessionSubmitOrder) {
  Server server({.replicas = 2,
                 .dispatchers = 4,
                 .batch_max = 3,
                 .batch_window = std::chrono::microseconds(100)});
  server.add_tenant("t", trace_tenant());

  std::mutex order_mutex;
  std::vector<std::uint64_t> delivered;
  SessionOptions opts;
  opts.on_response = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(order_mutex);
    delivered.push_back(r.sequence);
  };
  const SessionId s = server.open_session("t", std::move(opts));

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(s, {.trace = trace(i)}));
  server.drain();

  for (std::size_t i = 0; i < kRequests; ++i) {
    const Response r = futures[i].get();
    EXPECT_EQ(r.sequence, i);
    EXPECT_GT(r.report.energy_pj, 0.0);
    EXPECT_GE(r.total_ns, r.queue_ns);
  }
  std::lock_guard<std::mutex> lock(order_mutex);
  ASSERT_EQ(delivered.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) EXPECT_EQ(delivered[i], i);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_GE(stats.batches, (kRequests + 2) / 3);
  EXPECT_EQ(server.latency().count(), kRequests);
}

TEST_F(ServeTest, BatchWindowCannotChangeResults) {
  // The same traces through maximally different batching regimes must
  // produce bit-identical per-request reports (requests execute
  // per-trace, so batch formation only amortises scheduling).
  constexpr std::size_t kRequests = 12;
  auto run = [&](std::size_t batch_max, std::chrono::microseconds window) {
    Server server({.replicas = 1,
                   .dispatchers = 2,
                   .batch_max = batch_max,
                   .batch_window = window});
    server.add_tenant("t", trace_tenant());
    const SessionId s = server.open_session("t");
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i)
      futures.push_back(server.submit(s, {.trace = trace(i)}));
    std::vector<Response> responses;
    for (auto& f : futures) responses.push_back(f.get());
    return responses;
  };

  const auto singles = run(1, std::chrono::microseconds(0));
  const auto batched = run(8, std::chrono::microseconds(2000));
  ASSERT_EQ(singles.size(), batched.size());
  bool saw_real_batch = false;
  for (std::size_t i = 0; i < singles.size(); ++i) {
    EXPECT_EQ(singles[i].report.energy_pj, batched[i].report.energy_pj) << i;
    EXPECT_EQ(singles[i].report.latency_ns, batched[i].report.latency_ns) << i;
    EXPECT_EQ(singles[i].batch_size, 1u);
    saw_real_batch = saw_real_batch || batched[i].batch_size > 1;
  }
  EXPECT_TRUE(saw_real_batch) << "the batched run never formed a real batch";
}

// ---------------------------------------------------------- determinism --

TEST_F(ServeTest, SessionResultsAreImmuneToCoTenantLoad) {
  constexpr std::uint64_t kSeed = 0xfeedULL;
  constexpr std::size_t kRequests = 6;

  // Reference: an idle server simulating the image stream alone.
  std::vector<std::size_t> reference;
  std::vector<double> reference_energy;
  {
    Server server({.replicas = 1, .dispatchers = 1});
    server.add_tenant("vision", image_tenant());
    const SessionId s = server.open_session("vision", {.seed = kSeed});
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i)
      futures.push_back(server.submit(s, {.image = image(i)}));
    for (auto& f : futures) {
      const Response r = f.get();
      EXPECT_TRUE(r.simulated);
      reference.push_back(r.predicted_class);
      reference_energy.push_back(r.report.energy_pj);
    }
  }

  // Same session seed on a busy server: a co-tenant hammers the chip
  // from another thread while the image stream runs.
  Server server({.replicas = 2, .dispatchers = 4, .batch_max = 4});
  server.add_tenant("vision", image_tenant());
  server.add_tenant("replay", trace_tenant());
  const SessionId noisy = server.open_session("replay");
  std::atomic<bool> stop{false};
  std::thread co_tenant([&] {
    std::size_t i = 0;
    while (!stop.load()) {
      try {
        server.submit(noisy, {.trace = trace(i++)});
      } catch (const ServeError&) {
        std::this_thread::yield();  // queue full: back off, keep hammering
      }
    }
  });

  const SessionId s = server.open_session("vision", {.seed = kSeed});
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(s, {.image = image(i)}));
  for (std::size_t i = 0; i < kRequests; ++i) {
    const Response r = futures[i].get();
    EXPECT_EQ(r.predicted_class, reference[i]) << "request " << i;
    EXPECT_EQ(r.report.energy_pj, reference_energy[i]) << "request " << i;
  }
  stop.store(true);
  co_tenant.join();
  server.drain();
}

TEST_F(ServeTest, SessionsOwnDecorrelatedSeedStreams) {
  Server server({.replicas = 1, .dispatchers = 1});
  server.add_tenant("t", trace_tenant());
  const SessionId a = server.open_session("t");
  const SessionId b = server.open_session("t");
  // Distinct sessions draw from distinct SplitMix64 streams; the same
  // sequence index never repeats a seed across sessions.
  EXPECT_NE(server.sessions().request_seed(a, 0),
            server.sessions().request_seed(b, 0));
  EXPECT_NE(server.sessions().request_seed(a, 0),
            server.sessions().request_seed(a, 1));
  // The stream is a pure function of (seed, sequence): reproducible.
  EXPECT_EQ(server.sessions().request_seed(a, 3),
            server.sessions().request_seed(a, 3));
}

// ------------------------------------------------------- latency recorder --

TEST(LatencyHistogram, QuantilesTrackKnownDistribution) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty histogram reports zero
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_EQ(h.max_ns(), 100000u);
  EXPECT_NEAR(h.mean_ns(), 50000.5, 1e-6);
  // Log-linear buckets with 6 sub-bits: <= ~1.6% relative error, plus
  // the bucket-upper-bound rounding.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.50)), 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.95)), 95000.0, 95000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99000.0, 99000.0 * 0.02);
  EXPECT_EQ(h.quantile(1.0), 100000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 10u, 63u}) h.record(v);
  // Below 2^kSubBits the buckets are unit-width: quantiles are exact.
  EXPECT_EQ(h.quantile(0.2), 1u);
  EXPECT_EQ(h.quantile(0.6), 3u);
  EXPECT_EQ(h.max_ns(), 63u);
}

TEST(LatencyRecorder, RecordsEveryStageAndRendersJson) {
  LatencyRecorder recorder;
  Response response;
  response.queue_ns = 1000;
  response.batch_ns = 2000;
  response.total_ns = 3000;
  response.report.latency_ns = 500.0;  // no breakdown: all compute
  recorder.record_response(response);
  EXPECT_EQ(recorder.count(), 1u);
  EXPECT_EQ(recorder.snapshot(LatencyRecorder::Stage::kQueue).count, 1u);
  EXPECT_GE(recorder.snapshot(LatencyRecorder::Stage::kQueue).p50_ns, 1000u);
  EXPECT_EQ(recorder.snapshot(LatencyRecorder::Stage::kCompute).max_ns, 500u);

  const std::string json = recorder.to_json();
  for (const char* key :
       {"\"requests\"", "\"queue\"", "\"batch\"", "\"compute\"",
        "\"transport\"", "\"stall\"", "\"total\"", "\"p99_ns\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  const std::string table = recorder.to_string();
  EXPECT_NE(table.find("total"), std::string::npos);
}

}  // namespace
}  // namespace resparc::serve
