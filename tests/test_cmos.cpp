// Unit tests for the CMOS baseline (cmos/falcon.hpp).
#include "cmos/falcon.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "snn/benchmarks.hpp"
#include "snn/simulator.hpp"

namespace resparc::cmos {
namespace {

using snn::LayerSpec;
using snn::Topology;

struct Fixture {
  explicit Fixture(Topology t, double activity = 0.1)
      : topo(std::move(t)), net(topo) {
    Rng rng(1);
    net.init_random(rng, 1.0f);
    std::vector<std::vector<float>> images;
    for (int i = 0; i < 2; ++i) {
      std::vector<float> img(topo.input_shape().size());
      for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
      images.push_back(std::move(img));
    }
    snn::SimConfig cfg;
    cfg.timesteps = 12;
    snn::calibrate_thresholds(net, images, cfg, rng, activity);
    snn::Simulator sim(net, cfg);
    for (const auto& img : images) traces.push_back(sim.run(img, rng).trace);
  }
  Topology topo;
  snn::Network net;
  std::vector<snn::SpikeTrace> traces;
};

Topology mlp_topo() {
  return Topology("m", Shape3{1, 1, 128},
                  {LayerSpec::dense(256), LayerSpec::dense(10)});
}

[[maybe_unused]] Topology cnn_topo() {
  return Topology("c", Shape3{1, 12, 12},
                  {LayerSpec::conv(8, 3), LayerSpec::avg_pool(2),
                   LayerSpec::dense(10)});
}

TEST(Cmos, ConfigValidation) {
  FalconConfig c;
  c.neuron_units = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = FalconConfig{};
  c.nu_width_bits = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = FalconConfig{};
  c.weight_bits = 20;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Cmos, Fig9CyclesPerSynop) {
  // 16-bit membranes on a 4-bit NU datapath: 4 cycles per synop.
  FalconConfig c;
  EXPECT_DOUBLE_EQ(c.cycles_per_synop(), 4.0);
}

TEST(Cmos, WeightMemorySizedToNetwork) {
  Fixture fx(mlp_topo());
  FalconAccelerator acc(fx.topo, {});
  // 128*256 + 256*10 weights at 4 bits.
  const std::size_t bits = (128 * 256 + 256 * 10) * 4;
  EXPECT_EQ(acc.weight_memory_bytes(), bits / 8);
  EXPECT_GT(acc.state_memory_bytes(), 0u);
}

TEST(Cmos, RunProducesPositiveEverything) {
  Fixture fx(mlp_topo());
  FalconAccelerator acc(fx.topo, {});
  const CmosReport r = acc.run(fx.traces[0]);
  EXPECT_GT(r.energy.core_pj, 0.0);
  EXPECT_GT(r.energy.memory_access_pj, 0.0);
  EXPECT_GT(r.energy.memory_leakage_pj, 0.0);
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.latency_ns(), 0.0);
  EXPECT_GT(r.throughput_hz(), 0.0);
}

TEST(Cmos, EventDrivenSkipsReduceWork) {
  Fixture fx(mlp_topo(), 0.05);
  FalconConfig on{}, off{};
  off.event_driven = false;
  const CmosReport r_on = FalconAccelerator(fx.topo, on).run_all(fx.traces);
  const CmosReport r_off = FalconAccelerator(fx.topo, off).run_all(fx.traces);
  EXPECT_LT(r_on.energy.total_pj(), r_off.energy.total_pj());
  EXPECT_LT(r_on.cycles, r_off.cycles);
  EXPECT_GT(r_on.events.synops_skipped, 0u);
}

TEST(Cmos, MlpIsMemoryDominated) {
  // Fig. 12(b): MLP energy dominated by memory access + leakage.
  Fixture fx(Topology("bigmlp", Shape3{1, 1, 784},
                      {LayerSpec::dense(800), LayerSpec::dense(10)}));
  const CmosReport r = FalconAccelerator(fx.topo, {}).run_all(fx.traces);
  EXPECT_GT(r.energy.memory_access_pj + r.energy.memory_leakage_pj,
            r.energy.core_pj);
}

TEST(Cmos, CnnIsCoreDominated) {
  // Fig. 12(d): conv weight reuse shrinks memory traffic; compute leads.
  Fixture fx(Topology("bigcnn", Shape3{1, 28, 28},
                      {LayerSpec::conv(16, 3), LayerSpec::avg_pool(2),
                       LayerSpec::conv(32, 3), LayerSpec::avg_pool(2),
                       LayerSpec::dense(10)}));
  const CmosReport r = FalconAccelerator(fx.topo, {}).run_all(fx.traces);
  EXPECT_GT(r.energy.core_pj, r.energy.memory_access_pj);
}

TEST(Cmos, EnergyGrowsWithWeightBits) {
  // Fig. 14(b): baseline energy increases with bit precision.
  Fixture fx(mlp_topo());
  double prev = 0.0;
  for (int bits : {1, 2, 4, 8}) {
    FalconConfig c;
    c.weight_bits = bits;
    const CmosReport r = FalconAccelerator(fx.topo, c).run_all(fx.traces);
    EXPECT_GT(r.energy.total_pj(), prev);
    prev = r.energy.total_pj();
  }
}

TEST(Cmos, ThroughputScalesWithNuCount) {
  Fixture fx(mlp_topo());
  FalconConfig few{}, many{};
  few.neuron_units = 4;
  many.neuron_units = 64;
  const CmosReport r_few = FalconAccelerator(fx.topo, few).run(fx.traces[0]);
  const CmosReport r_many = FalconAccelerator(fx.topo, many).run(fx.traces[0]);
  EXPECT_LT(r_many.cycles, r_few.cycles);
}

TEST(Cmos, MetricsTableShape) {
  const BaselineMetrics m = baseline_metrics({});
  EXPECT_EQ(m.nu_count, 16u);
  EXPECT_DOUBLE_EQ(m.frequency_mhz, 1000.0);
  EXPECT_GT(m.area_mm2, 0.0);
  EXPECT_GT(m.power_mw, 0.0);
  EXPECT_GT(m.gate_count, 0.0);
}

TEST(Cmos, RejectsMismatchedTrace) {
  Fixture fx(mlp_topo());
  FalconAccelerator acc(fx.topo, {});
  snn::SpikeTrace bad;
  bad.layers.resize(1);
  bad.layers[0].emplace_back(128);
  EXPECT_THROW(acc.run(bad), ConfigError);
}

TEST(Cmos, PoolLayersFetchNoWeights) {
  Fixture fx(Topology("pool-only", Shape3{1, 8, 8}, {LayerSpec::avg_pool(2)}));
  const CmosReport r = FalconAccelerator(fx.topo, {}).run(fx.traces[0]);
  EXPECT_EQ(r.events.weight_words, 0u);
}

}  // namespace
}  // namespace resparc::cmos
