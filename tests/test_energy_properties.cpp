// Property tests of the architecture cost models, parameterised over the
// MCA-size sweep the paper evaluates.  These pin the *relations* every
// figure depends on, independent of the constants' absolute values.
#include <gtest/gtest.h>

#include <vector>

#include "cmos/falcon.hpp"
#include "common/rng.hpp"
#include "core/resparc.hpp"
#include "snn/simulator.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

/// Traces at a controllable activity level for a mid-size MLP.
std::vector<snn::SpikeTrace> traces_at(double activity, std::uint64_t seed,
                                       const Topology& topo) {
  snn::Network net(topo);
  Rng rng(seed);
  net.init_random(rng, 1.0f);
  std::vector<std::vector<float>> images;
  for (int i = 0; i < 2; ++i) {
    std::vector<float> img(topo.input_shape().size());
    for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 0.9));
    images.push_back(std::move(img));
  }
  snn::SimConfig cfg;
  cfg.timesteps = 12;
  snn::calibrate_thresholds(net, images, cfg, rng, activity);
  snn::Simulator sim(net, cfg);
  std::vector<snn::SpikeTrace> traces;
  for (const auto& img : images) traces.push_back(sim.run(img, rng).trace);
  return traces;
}

Topology mlp_topo() {
  return Topology("p-mlp", Shape3{1, 1, 256},
                  {LayerSpec::dense(256), LayerSpec::dense(10)});
}

class McaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McaSweep, PipelinedNeverSlowerThanSerial) {
  const auto traces = traces_at(0.1, 1, mlp_topo());
  ResparcChip chip(config_with_mca(GetParam()));
  chip.load(mlp_topo());
  const RunReport r = chip.execute(traces);
  EXPECT_LE(r.perf.cycles_pipelined, r.perf.cycles_serial);
  EXPECT_GT(r.perf.throughput_hz(), 0.0);
}

TEST_P(McaSweep, EnergyRisesWithActivity) {
  const Topology topo = mlp_topo();
  ResparcChip chip(config_with_mca(GetParam()));
  chip.load(topo);
  const double low =
      chip.execute(traces_at(0.05, 2, topo)).energy.total_pj();
  const double high =
      chip.execute(traces_at(0.25, 2, topo)).energy.total_pj();
  EXPECT_GT(high, low);
}

TEST_P(McaSweep, EventDrivenOnlySubtracts) {
  const auto traces = traces_at(0.08, 3, mlp_topo());
  ResparcConfig on = config_with_mca(GetParam());
  ResparcConfig off = on;
  off.event_driven = false;
  ResparcChip chip_on(on), chip_off(off);
  chip_on.load(mlp_topo());
  chip_off.load(mlp_topo());
  const RunReport r_on = chip_on.execute(traces);
  const RunReport r_off = chip_off.execute(traces);
  EXPECT_LE(r_on.energy.total_pj(), r_off.energy.total_pj());
  // Functional events (fires, integrations of active groups) are counts
  // of real work; the zero-check must never *create* events.
  EXPECT_EQ(r_on.events.neuron_fires, r_off.events.neuron_fires);
  EXPECT_LE(r_on.events.mca_activations, r_off.events.mca_activations);
}

TEST_P(McaSweep, CrossbarEnergyIndependentOfDeviceBits) {
  const auto traces = traces_at(0.1, 4, mlp_topo());
  double first = -1.0;
  for (int bits : {1, 4, 8}) {
    ResparcConfig cfg = config_with_mca(GetParam());
    cfg.technology.memristor.bits = bits;
    ResparcChip chip(cfg);
    chip.load(mlp_topo());
    const double e = chip.execute(traces).energy.crossbar_pj;
    if (first < 0.0)
      first = e;
    else
      EXPECT_NEAR(e, first, first * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, McaSweep,
                         ::testing::Values(32u, 64u, 128u, 256u));

TEST(EnergyProperties, LeakageScalesWithDeployedColumns) {
  // Same traces, two chips: one hosting a 2x bigger network leaks more
  // per unit time (leakage follows deployed silicon, not workload).
  const Topology small_t("s", Shape3{1, 1, 128},
                         {LayerSpec::dense(64), LayerSpec::dense(10)});
  const Topology big_t("b", Shape3{1, 1, 128},
                       {LayerSpec::dense(512), LayerSpec::dense(10)});
  const auto traces_small = traces_at(0.1, 5, small_t);
  const auto traces_big = traces_at(0.1, 5, big_t);
  ResparcChip chip_small(default_config()), chip_big(default_config());
  chip_small.load(small_t);
  chip_big.load(big_t);
  const RunReport rs = chip_small.execute(traces_small);
  const RunReport rb = chip_big.execute(traces_big);
  const double leak_rate_small =
      rs.energy.leakage_pj / rs.perf.latency_pipelined_ns();
  const double leak_rate_big =
      rb.energy.leakage_pj / rb.perf.latency_pipelined_ns();
  EXPECT_GT(leak_rate_big, leak_rate_small);
}

TEST(EnergyProperties, CmosCyclesScaleInverselyWithNuWidth) {
  // A 4-bit NU needs 4 cycles per 16-bit accumulate; an 8-bit NU needs 2.
  const Topology topo = mlp_topo();
  const auto traces = traces_at(0.1, 6, topo);
  cmos::FalconConfig narrow{}, wide{};
  narrow.nu_width_bits = 4;
  wide.nu_width_bits = 8;
  const double c_narrow =
      cmos::FalconAccelerator(topo, narrow).run_all(traces).cycles;
  const double c_wide =
      cmos::FalconAccelerator(topo, wide).run_all(traces).cycles;
  EXPECT_GT(c_narrow, c_wide);
}

TEST(EnergyProperties, SameTracesSameReportDeterminism) {
  const Topology topo = mlp_topo();
  const auto traces = traces_at(0.1, 7, topo);
  ResparcChip chip(default_config());
  chip.load(topo);
  const RunReport a = chip.execute(traces);
  const RunReport b = chip.execute(traces);
  EXPECT_DOUBLE_EQ(a.energy.total_pj(), b.energy.total_pj());
  EXPECT_DOUBLE_EQ(a.perf.cycles_pipelined, b.perf.cycles_pipelined);
  EXPECT_EQ(a.events.mca_activations, b.events.mca_activations);
}

TEST(EnergyProperties, MappingInvariantUnderEventDrivenFlag) {
  // The zero-check is a runtime lever; it must not change placement.
  ResparcConfig on = default_config();
  ResparcConfig off = default_config();
  off.event_driven = false;
  const Topology topo = mlp_topo();
  const Mapping m_on = map_network(topo, on);
  const Mapping m_off = map_network(topo, off);
  EXPECT_EQ(m_on.total_mcas, m_off.total_mcas);
  EXPECT_EQ(m_on.total_mpes, m_off.total_mpes);
  EXPECT_EQ(m_on.total_neurocells, m_off.total_neurocells);
}

}  // namespace
}  // namespace resparc::core
