// Unit tests for the crossbar electrical model (tech/crossbar_model.hpp).
#include "tech/crossbar_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace resparc::tech {
namespace {

/// Ideal device (sneak disabled) so the linearity assertions below hold
/// exactly; sneak behaviour has its own dedicated test.
Memristor device() {
  MemristorParams p = pcm_params();
  p.sneak_leak_fraction = 0.0;
  return Memristor{p};
}

TEST(CrossbarModel, StartsAtGmin) {
  CrossbarModel xbar(4, 4, device());
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(xbar.conductance_at(r, c), device().g_min());
}

TEST(CrossbarModel, ProgramShapeChecked) {
  CrossbarModel xbar(4, 4, device());
  EXPECT_THROW(xbar.program(Matrix(3, 4)), ShapeError);
}

TEST(CrossbarModel, KirchhoffColumnSum) {
  // I_c = sum over active rows of V * G(r,c).
  CrossbarModel xbar(2, 2, device());
  Matrix mags(2, 2);
  mags(0, 0) = 1.0f;  // G_on
  mags(0, 1) = 0.0f;  // G_off
  mags(1, 0) = 1.0f;
  mags(1, 1) = 1.0f;
  xbar.program(mags);
  const std::vector<std::uint8_t> spikes{1, 1};
  std::vector<double> currents(2);
  xbar.read_currents(spikes, currents);
  const double v = 0.5;
  EXPECT_NEAR(currents[0], v * 2.0 * xbar.device().g_max(), 1e-12);
  EXPECT_NEAR(currents[1], v * (xbar.device().g_min() + xbar.device().g_max()),
              1e-12);
}

TEST(CrossbarModel, SilentRowsContributeNothing) {
  CrossbarModel xbar(2, 1, device());
  Matrix mags(2, 1, 1.0f);
  xbar.program(mags);
  std::vector<double> both(1), one(1);
  xbar.read_currents(std::vector<std::uint8_t>{1, 1}, both);
  xbar.read_currents(std::vector<std::uint8_t>{1, 0}, one);
  EXPECT_NEAR(both[0], 2.0 * one[0], 1e-12);
}

TEST(CrossbarModel, ReadEnergyScalesWithActiveRows) {
  CrossbarModel xbar(8, 8, device());
  Matrix mags(8, 8, 0.5f);
  xbar.program(mags);
  std::vector<std::uint8_t> none(8, 0), half(8, 0), all(8, 1);
  for (int i = 0; i < 4; ++i) half[static_cast<std::size_t>(i)] = 1;
  EXPECT_DOUBLE_EQ(xbar.read_energy_pj(none), 0.0);
  const double e_half = xbar.read_energy_pj(half);
  const double e_all = xbar.read_energy_pj(all);
  EXPECT_GT(e_half, 0.0);
  EXPECT_NEAR(e_all, 2.0 * e_half, 1e-9);
}

TEST(CrossbarModel, MeanReadEnergyMatchesAnalytic) {
  CrossbarModel xbar(16, 16, device());
  const double per_cell = device().mean_cell_read_energy_pj();
  EXPECT_NEAR(xbar.mean_read_energy_pj(4.0, 16.0), 4.0 * 16.0 * per_cell, 1e-12);
}

TEST(CrossbarModel, IdealHasNoAttenuation) {
  CrossbarModel xbar(64, 64, device());
  EXPECT_DOUBLE_EQ(xbar.worst_case_ir_attenuation(), 1.0);
}

TEST(CrossbarModel, IrDropWorsensWithArraySize) {
  // The paper's core reliability argument: larger arrays see more wire
  // segments, hence worse worst-case signal attenuation.
  CrossbarNonIdealities ni;
  ni.wire_resistance_ohm = 5.0;
  double prev = 1.0;
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    CrossbarModel xbar(n, n, device());
    Matrix mags(n, n, 1.0f);
    xbar.program(mags, ni);
    const double att = xbar.worst_case_ir_attenuation();
    EXPECT_LT(att, prev);
    prev = att;
  }
}

TEST(CrossbarModel, StuckOffForcesGmin) {
  CrossbarModel xbar(8, 8, device());
  Matrix mags(8, 8, 1.0f);
  CrossbarNonIdealities ni;
  ni.stuck_off_probability = 1.0;  // every device defective
  Rng rng(1);
  xbar.program(mags, ni, &rng);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_DOUBLE_EQ(xbar.conductance_at(r, c), device().g_min());
}

TEST(CrossbarModel, StochasticNeedsRng) {
  CrossbarModel xbar(2, 2, device());
  Matrix mags(2, 2, 0.5f);
  CrossbarNonIdealities ni;
  ni.programming_sigma = 0.1;
  EXPECT_THROW(xbar.program(mags, ni, nullptr), ConfigError);
}

TEST(CrossbarModel, ProgrammingNoiseStaysInBounds) {
  CrossbarModel xbar(16, 16, device());
  Matrix mags(16, 16, 0.5f);
  CrossbarNonIdealities ni;
  ni.programming_sigma = 2.0;  // huge noise; clamping must hold
  Rng rng(7);
  xbar.program(mags, ni, &rng);
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 16; ++c) {
      const double g = xbar.conductance_at(r, c);
      EXPECT_GE(g, device().g_min());
      EXPECT_LE(g, device().g_max());
    }
}

TEST(CrossbarModel, SneakLeakageAddsIdleRowEnergy) {
  MemristorParams p = pcm_params();
  p.sneak_leak_fraction = 0.1;
  CrossbarModel leaky(8, 8, Memristor{p});
  CrossbarModel ideal(8, 8, device());
  Matrix mags(8, 8, 0.5f);
  leaky.program(mags);
  ideal.program(mags);
  std::vector<std::uint8_t> one(8, 0);
  one[0] = 1;
  EXPECT_GT(leaky.read_energy_pj(one), ideal.read_energy_pj(one));
}

}  // namespace
}  // namespace resparc::tech
