// Unit tests for rate encoding (snn/encoder.hpp).
#include "snn/encoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace resparc::snn {
namespace {

TEST(Encoder, RejectsBadRate) {
  EXPECT_THROW(RateEncoder({.max_rate = 0.0}), ConfigError);
  EXPECT_THROW(RateEncoder({.max_rate = 1.5}), ConfigError);
}

TEST(Encoder, ZeroPixelNeverSpikes) {
  RateEncoder enc({.max_rate = 1.0, .poisson = true});
  Rng rng(1);
  std::vector<float> img{0.0f};
  const auto spikes = enc.encode(img, 64, rng);
  for (const auto& v : spikes) EXPECT_TRUE(v.none());
}

TEST(Encoder, FullPixelAlwaysSpikesAtUnitRate) {
  RateEncoder enc({.max_rate = 1.0, .poisson = true});
  Rng rng(2);
  std::vector<float> img{1.0f};
  const auto spikes = enc.encode(img, 64, rng);
  for (const auto& v : spikes) EXPECT_TRUE(v.get(0));
}

TEST(Encoder, PoissonRateMatchesIntensity) {
  RateEncoder enc({.max_rate = 1.0, .poisson = true});
  Rng rng(3);
  std::vector<float> img{0.3f};
  std::size_t fired = 0;
  const std::size_t T = 20000;
  const auto spikes = enc.encode(img, T, rng);
  for (const auto& v : spikes) fired += v.count();
  EXPECT_NEAR(static_cast<double>(fired) / static_cast<double>(T), 0.3, 0.02);
}

TEST(Encoder, MaxRateScalesProbability) {
  RateEncoder enc({.max_rate = 0.5, .poisson = true});
  Rng rng(4);
  std::vector<float> img{1.0f};
  std::size_t fired = 0;
  const std::size_t T = 20000;
  const auto spikes = enc.encode(img, T, rng);
  for (const auto& v : spikes) fired += v.count();
  EXPECT_NEAR(static_cast<double>(fired) / static_cast<double>(T), 0.5, 0.02);
}

TEST(Encoder, DeterministicModeIsReproducible) {
  RateEncoder enc({.max_rate = 1.0, .poisson = false});
  Rng rng1(5), rng2(99);  // rng must be ignored
  std::vector<float> img{0.25f, 0.7f};
  const auto a = enc.encode(img, 32, rng1);
  const auto b = enc.encode(img, 32, rng2);
  for (std::size_t t = 0; t < 32; ++t)
    for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(a[t].get(i), b[t].get(i));
}

TEST(Encoder, DeterministicRateExact) {
  RateEncoder enc({.max_rate = 1.0, .poisson = false});
  Rng rng(6);
  std::vector<float> img{0.25f};
  const auto spikes = enc.encode(img, 400, rng);
  std::size_t fired = 0;
  for (const auto& v : spikes) fired += v.count();
  EXPECT_EQ(fired, 100u);  // exactly one spike every 4 steps
}

TEST(Encoder, ClampsOutOfRangePixels) {
  RateEncoder enc({.max_rate = 1.0, .poisson = false});
  Rng rng(7);
  std::vector<float> img{-0.5f, 2.0f};
  const auto spikes = enc.encode(img, 8, rng);
  std::size_t neg = 0, over = 0;
  for (const auto& v : spikes) {
    neg += v.get(0);
    over += v.get(1);
  }
  EXPECT_EQ(neg, 0u);
  EXPECT_EQ(over, 8u);
}

}  // namespace
}  // namespace resparc::snn
