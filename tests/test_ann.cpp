// Unit tests for the rate-based ANN (train/ann.hpp), including a numerical
// gradient check of the back-propagation.
#include "train/ann.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace resparc::train {
namespace {

using snn::LayerSpec;
using snn::Topology;

TEST(Ann, DenseForwardMatchesHandComputation) {
  Ann ann(Topology("d", Shape3{1, 1, 2}, {LayerSpec::dense(2)}));
  ann.weights(0)(0, 0) = 1.0f;
  ann.weights(0)(0, 1) = 2.0f;
  ann.weights(0)(1, 0) = 3.0f;
  ann.weights(0)(1, 1) = 4.0f;
  const auto out = ann.logits(std::vector<float>{1.0f, 2.0f});
  EXPECT_FLOAT_EQ(out[0], 1.0f + 2.0f * 3.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f + 2.0f * 4.0f);
}

TEST(Ann, ReluAppliesOnHiddenOnly) {
  Ann ann(Topology("r", Shape3{1, 1, 1},
                   {LayerSpec::dense(1), LayerSpec::dense(1)}));
  ann.weights(0)(0, 0) = -1.0f;  // hidden gets -1 -> ReLU -> 0
  ann.weights(1)(0, 0) = -5.0f;  // output may be negative (linear)
  const auto pass = ann.forward(std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(pass.activations[1][0], 0.0f);
  Ann ann2(Topology("r2", Shape3{1, 1, 1}, {LayerSpec::dense(1)}));
  ann2.weights(0)(0, 0) = -1.0f;
  EXPECT_FLOAT_EQ(ann2.logits(std::vector<float>{1.0f})[0], -1.0f);
}

TEST(Ann, ConvForwardCentrePixel) {
  Ann ann(Topology("c", Shape3{1, 3, 3}, {LayerSpec::conv(1, 3, true)}));
  // Kernel one-hot at centre tap (ky=1,kx=1): output = input (same pad).
  ann.weights(0)((0 * 3 + 1) * 3 + 1, 0) = 1.0f;
  std::vector<float> img(9, 0.0f);
  img[4] = 2.0f;
  const auto out = ann.logits(img);
  EXPECT_FLOAT_EQ(out[4], 2.0f);
  float sum = 0.0f;
  for (float v : out) sum += v;
  EXPECT_FLOAT_EQ(sum, 2.0f);
}

TEST(Ann, PoolForwardAverages) {
  Ann ann(Topology("p", Shape3{1, 2, 2}, {LayerSpec::avg_pool(2)}));
  const auto out = ann.logits(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(out[0], 2.5f);
}

TEST(Ann, PredictIsArgmax) {
  Ann ann(Topology("a", Shape3{1, 1, 2}, {LayerSpec::dense(3)}));
  ann.weights(0)(0, 1) = 5.0f;
  EXPECT_EQ(ann.predict(std::vector<float>{1.0f, 0.0f}), 1);
}

TEST(Ann, BackwardLossPositiveAndFinite) {
  Rng rng(1);
  Ann ann(Topology("b", Shape3{1, 1, 4},
                   {LayerSpec::dense(8), LayerSpec::dense(3)}));
  ann.init_he(rng);
  auto grads = ann.make_grad_buffers();
  const auto pass = ann.forward(std::vector<float>{0.2f, 0.4f, 0.6f, 0.8f});
  const double loss = ann.backward(pass, 1, grads);
  EXPECT_GT(loss, 0.0);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(Ann, GradientMatchesFiniteDifferenceDense) {
  Rng rng(2);
  Ann ann(Topology("g", Shape3{1, 1, 3},
                   {LayerSpec::dense(4), LayerSpec::dense(2)}));
  ann.init_he(rng);
  const std::vector<float> x{0.5f, -0.2f, 0.8f};
  const int label = 1;

  auto grads = ann.make_grad_buffers();
  ann.backward(ann.forward(x), label, grads);

  auto loss_of = [&]() {
    auto g = ann.make_grad_buffers();
    return ann.backward(ann.forward(x), label, g);
  };
  const float eps = 1e-3f;
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t idx : {std::size_t{0}, ann.weights(l).size() / 2}) {
      float& w = ann.weights(l).flat()[idx];
      const float orig = w;
      w = orig + eps;
      const double lp = loss_of();
      w = orig - eps;
      const double lm = loss_of();
      w = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = grads[l].flat()[idx];
      EXPECT_NEAR(analytic, numeric, 2e-2 * std::max(1.0, std::abs(numeric)))
          << "layer " << l << " idx " << idx;
    }
  }
}

TEST(Ann, GradientMatchesFiniteDifferenceConv) {
  Rng rng(3);
  Ann ann(Topology("gc", Shape3{1, 4, 4},
                   {LayerSpec::conv(2, 3, true), LayerSpec::avg_pool(2),
                    LayerSpec::dense(2)}));
  ann.init_he(rng);
  std::vector<float> x(16);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const int label = 0;

  auto grads = ann.make_grad_buffers();
  ann.backward(ann.forward(x), label, grads);
  auto loss_of = [&]() {
    auto g = ann.make_grad_buffers();
    return ann.backward(ann.forward(x), label, g);
  };
  const float eps = 1e-3f;
  for (std::size_t l : {std::size_t{0}, std::size_t{2}}) {
    const std::size_t idx = 1;
    float& w = ann.weights(l).flat()[idx];
    const float orig = w;
    w = orig + eps;
    const double lp = loss_of();
    w = orig - eps;
    const double lm = loss_of();
    w = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grads[l].flat()[idx], numeric,
                2e-2 * std::max(1.0, std::abs(numeric)))
        << "layer " << l;
  }
}

TEST(Ann, BackwardValidatesLabel) {
  Ann ann(Topology("v", Shape3{1, 1, 2}, {LayerSpec::dense(2)}));
  auto grads = ann.make_grad_buffers();
  const auto pass = ann.forward(std::vector<float>{1.0f, 0.0f});
  EXPECT_THROW(ann.backward(pass, 5, grads), ConfigError);
  EXPECT_THROW(ann.backward(pass, -1, grads), ConfigError);
}

TEST(Ann, ForwardValidatesInputSize) {
  Ann ann(Topology("s", Shape3{1, 1, 4}, {LayerSpec::dense(2)}));
  EXPECT_THROW(ann.forward(std::vector<float>{1.0f}), ConfigError);
}

}  // namespace
}  // namespace resparc::train
