// Tests of the unified accelerator API (src/api): registry behaviour,
// bit-for-bit parity of the backends with the legacy interfaces, and
// thread-count invariance of the batched pipeline.
#include <gtest/gtest.h>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "cmos/falcon.hpp"
#include "core/resparc.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::api {
namespace {

/// Shared small workload: the reduced MNIST MLP with realistic traces.
class ApiWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineOptions opt;
    opt.images = 3;
    opt.timesteps = 8;
    opt.seed = 11;
    opt.threads = 1;
    workload_ = new Workload(Pipeline(opt)
                                 .dataset(snn::DatasetKind::kMnistLike)
                                 .topology(snn::small_mlp_topology(
                                     snn::DatasetKind::kMnistLike))
                                 .run());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static Workload* workload_;
};

Workload* ApiWorkload::workload_ = nullptr;

void expect_traces_equal(const snn::SpikeTrace& a, const snn::SpikeTrace& b) {
  ASSERT_EQ(a.layer_count(), b.layer_count());
  ASSERT_EQ(a.timesteps(), b.timesteps());
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (std::size_t t = 0; t < a.timesteps(); ++t) {
      const auto wa = a.layers[l][t].words();
      const auto wb = b.layers[l][t].words();
      ASSERT_EQ(wa.size(), wb.size());
      for (std::size_t i = 0; i < wa.size(); ++i)
        ASSERT_EQ(wa[i], wb[i]) << "layer " << l << " step " << t;
    }
  }
}

// ---------------------------------------------------------------- registry --

TEST(Registry, BuiltinsAreRegistered) {
  const auto names = registered_backends();
  for (const char* expected :
       {"resparc", "resparc-32", "resparc-64", "resparc-128", "cmos", "falcon"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(Registry, UnknownNameThrowsListingAlternatives) {
  try {
    make_accelerator("no-such-backend");
    FAIL() << "expected BackendError";
  } catch (const BackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    EXPECT_NE(what.find("resparc"), std::string::npos);
    EXPECT_NE(what.find("cmos"), std::string::npos);
    // The message also lists the mapping strategies a key may select.
    EXPECT_NE(what.find("strategies"), std::string::npos);
    EXPECT_NE(what.find("paper"), std::string::npos);
    EXPECT_NE(what.find("greedy-pack"), std::string::npos);
    EXPECT_NE(what.find("balanced"), std::string::npos);
    EXPECT_NE(what.find("anneal"), std::string::npos);
    EXPECT_NE(what.find("beam"), std::string::npos);
  }
}

TEST(Registry, UnknownStrategySuffixThrowsListingStrategies) {
  try {
    make_accelerator("resparc-64/no-such-strategy");
    FAIL() << "expected BackendError";
  } catch (const BackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-strategy"), std::string::npos);
    EXPECT_NE(what.find("paper"), std::string::npos);
    EXPECT_NE(what.find("greedy-pack"), std::string::npos);
    EXPECT_NE(what.find("balanced"), std::string::npos);
    EXPECT_NE(what.find("anneal"), std::string::npos);
    EXPECT_NE(what.find("beam"), std::string::npos);
  }
}

TEST(Registry, StrategySuffixOnNonCompiledBackendThrows) {
  EXPECT_THROW(make_accelerator("cmos/greedy-pack"), BackendError);
}

TEST(Registry, TrailingSlashThrows) {
  EXPECT_THROW(make_accelerator("resparc-64/"), BackendError);
}

TEST(Registry, RegisteredNameContainingSlashResolvesExactly) {
  // An exact registered name wins over the "/<strategy>" interpretation.
  register_backend("test-slashed/v2", [](const BackendOptions& o) {
    return std::make_unique<ResparcBackend>(o.resparc);
  });
  const auto accel = make_accelerator("test-slashed/v2");
  EXPECT_EQ(accel->name(), "RESPARC-64");
}

TEST(Registry, TypoInOptionsStrategyThrowsAtCreation) {
  // A bad options.strategy must fail here as BackendError, not later at
  // load() time as a compile error.
  BackendOptions options;
  options.strategy = "blanced";
  EXPECT_THROW(make_accelerator("resparc-64", options), BackendError);
  options.strategy = "";
  EXPECT_THROW(make_accelerator("resparc-64", options), BackendError);
}

TEST(Registry, RegisterBackendRejectsBadArguments) {
  EXPECT_THROW(register_backend("", [](const BackendOptions&) {
    return std::unique_ptr<Accelerator>();
  }),
               ConfigError);
  EXPECT_THROW(register_backend("x", BackendFactory{}), ConfigError);
}

TEST(Registry, CustomBackendIsCreatable) {
  register_backend("test-resparc-copy", [](const BackendOptions& o) {
    return std::make_unique<ResparcBackend>(o.resparc);
  });
  const auto accel = make_accelerator("test-resparc-copy");
  EXPECT_EQ(accel->name(), "RESPARC-64");
}

TEST(Registry, SizedVariantsOverrideMcaSize) {
  const auto accel = make_accelerator("resparc-32");
  EXPECT_EQ(accel->name(), "RESPARC-32");
  const auto* backend = dynamic_cast<const ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->config().mca_size, 32u);
}

TEST(Registry, OptionsReachTheBackend) {
  BackendOptions options;
  options.resparc.event_driven = false;
  options.cmos.weight_bits = 8;
  const auto resparc = make_accelerator("resparc", options);
  const auto cmos = make_accelerator("cmos", options);
  EXPECT_FALSE(dynamic_cast<const ResparcBackend&>(*resparc)
                   .config()
                   .event_driven);
  EXPECT_EQ(dynamic_cast<const CmosBackend&>(*cmos).config().weight_bits, 8);
}

// ------------------------------------------------------------------ parity --

TEST_F(ApiWorkload, ResparcBackendMatchesLegacyChipExactly) {
  const Workload& w = *workload_;

  core::ResparcChip chip(core::default_config());
  chip.load(w.topology());
  const core::RunReport legacy = chip.execute(w.traces);

  const auto accel = make_accelerator("resparc");
  accel->load(w.topology());
  const ExecutionReport report = accel->execute(w.traces);

  ASSERT_TRUE(report.resparc.has_value());
  EXPECT_EQ(report.resparc->energy.total_pj(), legacy.energy.total_pj());
  EXPECT_EQ(report.resparc->energy.neuron_pj, legacy.energy.neuron_pj);
  EXPECT_EQ(report.resparc->energy.crossbar_pj, legacy.energy.crossbar_pj);
  EXPECT_EQ(report.resparc->perf.cycles_pipelined, legacy.perf.cycles_pipelined);
  EXPECT_EQ(report.resparc->events.mca_activations, legacy.events.mca_activations);
  EXPECT_EQ(report.resparc->events.bus_words, legacy.events.bus_words);
  EXPECT_EQ(report.classifications, legacy.classifications);
  EXPECT_EQ(report.energy_pj, legacy.energy.total_pj());
  EXPECT_EQ(report.latency_ns, legacy.perf.latency_pipelined_ns());
}

TEST_F(ApiWorkload, CmosBackendMatchesLegacyFalconExactly) {
  const Workload& w = *workload_;

  const cmos::FalconAccelerator legacy_accel(w.topology(), {});
  const cmos::CmosReport legacy = legacy_accel.run_all(w.traces);

  const auto accel = make_accelerator("cmos");
  accel->load(w.topology());
  const ExecutionReport report = accel->execute(w.traces);

  ASSERT_TRUE(report.cmos.has_value());
  EXPECT_EQ(report.cmos->energy.total_pj(), legacy.energy.total_pj());
  EXPECT_EQ(report.cmos->energy.core_pj, legacy.energy.core_pj);
  EXPECT_EQ(report.cmos->energy.memory_access_pj, legacy.energy.memory_access_pj);
  EXPECT_EQ(report.cmos->cycles, legacy.cycles);
  EXPECT_EQ(report.cmos->events.synops, legacy.events.synops);
  EXPECT_EQ(report.energy_pj, legacy.energy.total_pj());
  EXPECT_EQ(report.latency_ns, legacy.latency_ns());
}

TEST_F(ApiWorkload, MetricsMatchLegacyRollups) {
  const auto resparc = make_accelerator("resparc");
  const core::NeuroCellMetrics nc = core::neurocell_metrics(core::default_config());
  EXPECT_EQ(resparc->metrics().area_mm2, nc.area_mm2);
  EXPECT_EQ(resparc->metrics().power_mw, nc.power_mw);

  const auto cmos = make_accelerator("cmos");
  const cmos::BaselineMetrics bm = cmos::baseline_metrics({});
  EXPECT_EQ(cmos->metrics().area_mm2, bm.area_mm2);
  EXPECT_EQ(cmos->metrics().frequency_mhz, bm.frequency_mhz);
}

TEST_F(ApiWorkload, ExecuteRequiresLoadedNetwork) {
  const auto accel = make_accelerator("resparc");
  EXPECT_THROW(accel->execute(workload_->traces), Error);
  EXPECT_THROW(Pipeline::execute(*accel, workload_->traces), Error);
}

// -------------------------------------------------------- batched execution --

TEST_F(ApiWorkload, BatchedExecuteMatchesSequentialBitForBit) {
  const Workload& w = *workload_;
  for (const char* name : {"resparc", "cmos"}) {
    const auto accel = make_accelerator(name);
    accel->load(w.topology());
    const ExecutionReport sequential = accel->execute(w.traces);
    const ExecutionReport batched = Pipeline::execute(*accel, w.traces, 3);
    EXPECT_EQ(batched.energy_pj, sequential.energy_pj) << name;
    EXPECT_EQ(batched.latency_ns, sequential.latency_ns) << name;
    EXPECT_EQ(batched.classifications, sequential.classifications) << name;
    ASSERT_EQ(batched.energy_breakdown_pj.size(),
              sequential.energy_breakdown_pj.size());
    for (std::size_t i = 0; i < batched.energy_breakdown_pj.size(); ++i) {
      EXPECT_EQ(batched.energy_breakdown_pj[i].first,
                sequential.energy_breakdown_pj[i].first);
      EXPECT_EQ(batched.energy_breakdown_pj[i].second,
                sequential.energy_breakdown_pj[i].second)
          << name << " bucket " << batched.energy_breakdown_pj[i].first;
    }
  }
}

TEST_F(ApiWorkload, BatchedExecuteSumsEventCounters) {
  const Workload& w = *workload_;
  const auto accel = make_accelerator("resparc");
  accel->load(w.topology());
  const ExecutionReport sequential = accel->execute(w.traces);
  const ExecutionReport batched = Pipeline::execute(*accel, w.traces, 2);
  ASSERT_TRUE(batched.resparc.has_value());
  EXPECT_EQ(batched.resparc->events.mca_activations,
            sequential.resparc->events.mca_activations);
  EXPECT_EQ(batched.resparc->events.neuron_fires,
            sequential.resparc->events.neuron_fires);
}

// ---------------------------------------------------- pipeline determinism --

TEST(PipelineDeterminism, ThreadCountDoesNotChangeTheWorkload) {
  PipelineOptions opt;
  opt.images = 4;
  opt.timesteps = 6;
  opt.seed = 23;

  opt.threads = 1;
  Workload single = Pipeline(opt)
                        .dataset(snn::DatasetKind::kMnistLike)
                        .topology(snn::small_mlp_topology(
                            snn::DatasetKind::kMnistLike))
                        .run();
  opt.threads = 4;
  Workload batched = Pipeline(opt)
                         .dataset(snn::DatasetKind::kMnistLike)
                         .topology(snn::small_mlp_topology(
                             snn::DatasetKind::kMnistLike))
                         .run();

  ASSERT_EQ(single.traces.size(), batched.traces.size());
  for (std::size_t i = 0; i < single.traces.size(); ++i)
    expect_traces_equal(single.traces[i], batched.traces[i]);
  EXPECT_EQ(single.predicted, batched.predicted);
  EXPECT_EQ(single.labels, batched.labels);
  EXPECT_EQ(single.accuracy, batched.accuracy);
  EXPECT_EQ(single.mean_activity, batched.mean_activity);
}

TEST(PipelineDeterminism, RepeatedRunsAreIdentical) {
  PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 5;
  opt.seed = 31;
  const auto build = [&] {
    return Pipeline(opt)
        .dataset(snn::DatasetKind::kMnistLike)
        .topology(snn::small_mlp_topology(snn::DatasetKind::kMnistLike))
        .run();
  };
  Workload a = build();
  Workload b = build();
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    expect_traces_equal(a.traces[i], b.traces[i]);
}

// -------------------------------------------------------------- comparison --

TEST_F(ApiWorkload, CompareRatiosAreRelativeToTheFirstBackend) {
  const Workload& w = *workload_;
  const std::vector<std::string> names{"cmos", "resparc"};
  const ComparisonReport report =
      Pipeline::compare(w.topology(), w.traces, names);

  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.reference().backend, "cmos");
  EXPECT_EQ(report.reference().energy_gain, 1.0);
  EXPECT_EQ(report.reference().speedup, 1.0);

  const ComparisonEntry* resparc = report.find("resparc");
  ASSERT_NE(resparc, nullptr);
  EXPECT_EQ(resparc->energy_gain,
            report.reference().report.energy_pj / resparc->report.energy_pj);
  // The paper's headline: RESPARC wins on energy and latency on MLPs.
  EXPECT_GT(resparc->energy_gain, 1.0);
  EXPECT_GT(resparc->speedup, 1.0);
  EXPECT_EQ(report.find("not-there"), nullptr);
}

// ------------------------------------------------------------ option paths --

TEST(PipelineOptionsPaths, QuantizedWorkloadDiffersFromFloat) {
  PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 5;
  opt.seed = 13;
  Workload base = Pipeline(opt)
                      .dataset(snn::DatasetKind::kMnistLike)
                      .topology(snn::small_mlp_topology(
                          snn::DatasetKind::kMnistLike))
                      .run();
  opt.weight_bits = 1;
  Workload quantized = Pipeline(opt)
                           .dataset(snn::DatasetKind::kMnistLike)
                           .topology(snn::small_mlp_topology(
                               snn::DatasetKind::kMnistLike))
                           .run();
  // 1-bit weights collapse every magnitude to one level; the stored
  // weights should differ.
  const auto base_w = base.network.layer(0).weights.flat();
  const auto quant_w = quantized.network.layer(0).weights.flat();
  ASSERT_EQ(base_w.size(), quant_w.size());
  EXPECT_FALSE(std::equal(base_w.begin(), base_w.end(), quant_w.begin()));
}

TEST(PipelineOptionsPaths, ProvidedNetworkSurvivesRepeatedRuns) {
  snn::Network net(snn::small_mlp_topology(snn::DatasetKind::kMnistLike));
  Rng rng(3);
  net.init_random(rng, 1.0f);
  net.set_uniform_threshold(1.5);

  PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 5;
  Pipeline pipeline(opt);
  pipeline.dataset(snn::DatasetKind::kMnistLike).network(net);
  Workload first = pipeline.run();
  Workload second = pipeline.run();  // builder must not be consumed
  ASSERT_EQ(first.traces.size(), second.traces.size());
  for (std::size_t i = 0; i < first.traces.size(); ++i)
    expect_traces_equal(first.traces[i], second.traces[i]);
  // And the workload's network is the caller's, not a random-init one.
  const auto expected = net.layer(0).weights.flat();
  const auto got = second.network.layer(0).weights.flat();
  ASSERT_EQ(expected.size(), got.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()));
}

TEST(PipelineOptionsPaths, RecordTracesOffSkipsSimulation) {
  PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 5;
  opt.record_traces = false;
  Workload w = Pipeline(opt)
                   .dataset(snn::DatasetKind::kMnistLike)
                   .topology(snn::small_mlp_topology(
                       snn::DatasetKind::kMnistLike))
                   .run();
  EXPECT_TRUE(w.traces.empty());
  EXPECT_EQ(w.test.size(), 2u);
  EXPECT_EQ(w.labels.size(), 2u);
}

TEST(PipelineOptionsPaths, MismatchedTopologyInputThrows) {
  PipelineOptions opt;
  opt.images = 1;
  Pipeline pipeline(opt);
  pipeline.dataset(snn::DatasetKind::kMnistLike)
      .topology(snn::Topology("odd", Shape3{1, 1, 10},
                              {snn::LayerSpec::dense(4)}));
  EXPECT_THROW(pipeline.run(), ConfigError);
}

}  // namespace
}  // namespace resparc::api
