// Allocation-regression guard: steady-state simulate/execute must
// perform ZERO heap allocations per presentation (docs/performance.md).
//
// The whole test binary's global operator new/delete are replaced with
// counting forwarders to malloc/free; counting is enabled only around
// the measured region.  The protocol per engine: run one paper-scale
// CNN presentation to warm the simulator's scratch arenas, then run a
// second identical presentation and require that it allocated nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/executor.hpp"
#include "core/mapper.hpp"
#include "snn/benchmarks.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  if (g_track.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size == 0 ? 1 : size);
  if (!p) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace resparc {
namespace {

/// Allocations performed by fn().
template <typename Fn>
std::size_t count_allocations(Fn&& fn) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_track.store(true, std::memory_order_relaxed);
  fn();
  g_track.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

class AllocationSteadyState : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto spec = snn::mnist_cnn();  // paper-scale CNN
    net_ = std::make_unique<snn::Network>(spec.topology);
    Rng rng(41);
    net_->init_random(rng, 1.0f);
    net_->set_uniform_threshold(1.5);
    image_.resize(spec.topology.input_shape().size());
    for (auto& p : image_) p = static_cast<float>(rng.uniform(0.0, 0.5));
  }

  /// Warm presentation, then a bit-identical second one with counting on.
  std::size_t second_presentation_allocations(snn::ExecutionMode mode) {
    snn::SimConfig cfg;
    cfg.timesteps = 4;
    cfg.record_trace = false;  // traces are a deliverable, not steady state
    cfg.mode = mode;
    snn::Simulator sim(*net_, cfg);
    snn::SimResult result;
    Rng warm_rng(42);
    sim.run(image_, warm_rng, result);
    Rng rng(42);  // same stream: the steady state replays identical work
    return count_allocations([&] { sim.run(image_, rng, result); });
  }

  std::unique_ptr<snn::Network> net_;
  std::vector<float> image_;
};

TEST_F(AllocationSteadyState, DenseSimulateSecondPresentationAllocatesNothing) {
  EXPECT_EQ(second_presentation_allocations(snn::ExecutionMode::kDense), 0u);
}

TEST_F(AllocationSteadyState, SparseSimulateSecondPresentationAllocatesNothing) {
  EXPECT_EQ(second_presentation_allocations(snn::ExecutionMode::kSparse), 0u);
}

TEST_F(AllocationSteadyState, ExecutorReplaySecondRunAllocatesNothing) {
  // The trace-driven executor's steady state: replaying a presentation
  // against a fixed mapping is counter arithmetic only.
  snn::SimConfig cfg;
  cfg.timesteps = 4;
  cfg.mode = snn::ExecutionMode::kDense;
  snn::Simulator sim(*net_, cfg);
  Rng rng(43);
  const snn::SpikeTrace trace = sim.run(image_, rng).trace;

  const core::Mapping mapping =
      core::map_network(net_->topology(), core::default_config());
  const core::Executor executor(net_->topology(), mapping);
  (void)executor.run(trace);  // warm (nothing to warm, but symmetric)
  core::RunReport report;
  const std::size_t allocations =
      count_allocations([&] { report = executor.run(trace); });
  EXPECT_GT(report.events.neuron_integrations, 0u);
  EXPECT_EQ(allocations, 0u);
}

}  // namespace
}  // namespace resparc
