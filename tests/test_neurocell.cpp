// Unit tests for the behavioral NeuroCell (core/neurocell.hpp), including
// the bit-exactness check against the functional simulator — the anchor
// that validates the whole analytic path.
#include "core/neurocell.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "snn/quantize.hpp"
#include "snn/simulator.hpp"

namespace resparc::core {
namespace {

using snn::LayerSpec;
using snn::Topology;

snn::Network random_mlp(std::size_t in, std::size_t hidden, std::size_t out,
                        std::uint64_t seed) {
  Topology topo("nc-mlp", Shape3{1, 1, in},
                {LayerSpec::dense(hidden), LayerSpec::dense(out)});
  snn::Network net(topo);
  Rng rng(seed);
  net.init_random(rng, 1.5f);
  net.layer(0).neuron.v_threshold = 0.4;
  net.layer(1).neuron.v_threshold = 0.4;
  return net;
}

TEST(NeuroCell, LoadRejectsConvNetworks) {
  Topology topo("cnn", Shape3{1, 8, 8},
                {LayerSpec::conv(4, 3), LayerSpec::dense(10)});
  snn::Network net(topo);
  NeuroCell nc(default_config());
  EXPECT_THROW(nc.load(net), ConfigError);
}

TEST(NeuroCell, LoadRejectsOversizedNetworks) {
  // 16 mPEs x 4 MCAs-64 = 64 MCAs capacity; this MLP needs far more.
  snn::Network net = random_mlp(2048, 2048, 10, 1);
  NeuroCell nc(default_config());
  EXPECT_THROW(nc.load(net), MappingError);
}

TEST(NeuroCell, StepWithoutLoadThrows) {
  NeuroCell nc(default_config());
  EXPECT_THROW(nc.step(snn::SpikeVector(4)), ConfigError);
}

TEST(NeuroCell, MatchesFunctionalSimulatorBitExactly) {
  // The key equivalence: a quantised network run on the functional
  // simulator must produce the same spikes, step for step, as the
  // behavioral NeuroCell running the unquantised network (the NeuroCell
  // quantises at program time with the same per-layer scale).
  snn::Network net = random_mlp(96, 48, 10, 2);
  snn::Network qnet = net;
  snn::quantize_network(qnet, 4);  // matches the 4-bit PCM device

  NeuroCell nc(default_config());
  nc.load(net);

  // Functional reference: drive qnet layer populations directly.
  snn::SimConfig cfg;
  cfg.timesteps = 12;
  cfg.encoder.poisson = false;
  snn::Simulator sim(qnet, cfg);
  Rng rng(3);
  std::vector<float> img(96);
  for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
  const snn::SimResult ref = sim.run(img, rng);

  nc.reset();
  for (std::size_t t = 0; t < cfg.timesteps; ++t) {
    const snn::SpikeVector& in = ref.trace.layers[0][t];
    const snn::SpikeVector out = nc.step(in);
    const snn::SpikeVector& expect = ref.trace.layers[2][t];
    ASSERT_EQ(out.size(), expect.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out.get(i), expect.get(i)) << "t=" << t << " neuron=" << i;
  }
}

TEST(NeuroCell, FanInBeyondFourMcasUsesCcu) {
  // fan-in 96 on MCA-32 -> 3 slices per column group; with 4 MCAs/mPE one
  // mPE still suffices.  fan-in 256 on MCA-32 -> 8 slices -> helpers+CCU.
  ResparcConfig cfg = config_with_mca(32);
  snn::Network net = random_mlp(256, 16, 10, 4);
  NeuroCell nc(cfg);
  nc.load(net);
  snn::SpikeVector in(256);
  for (std::size_t i = 0; i < 256; i += 3) in.set(i);
  nc.step(in);
  EXPECT_GT(nc.counters().ccu_transfers, 0u);
}

TEST(NeuroCell, ZeroInputSkipsEverything) {
  snn::Network net = random_mlp(64, 32, 10, 5);
  NeuroCell nc(default_config());
  nc.load(net);
  nc.step(snn::SpikeVector(64));
  const NeuroCellCounters c = nc.counters();
  EXPECT_EQ(c.mca_reads, 0u);
  EXPECT_GT(c.mca_skips, 0u);
  EXPECT_EQ(c.neuron_fires, 0u);
  // All output flits are zero -> all dropped by the switch zero-check.
  EXPECT_EQ(c.packets_dropped, c.packets_sent);
}

TEST(NeuroCell, EventDrivenOffForwardsZeroFlits) {
  ResparcConfig cfg = default_config();
  cfg.event_driven = false;
  snn::Network net = random_mlp(64, 32, 10, 6);
  NeuroCell nc(cfg);
  nc.load(net);
  nc.step(snn::SpikeVector(64));
  EXPECT_EQ(nc.counters().packets_dropped, 0u);
  EXPECT_GT(nc.counters().packets_sent, 0u);
}

TEST(NeuroCell, MpeCountMatchesAnalyticMapping) {
  snn::Network net = random_mlp(128, 64, 10, 7);
  NeuroCell nc(default_config());
  nc.load(net);
  // Layer 1: 2 slices x 1 col group -> 1 mPE; layer 2: 1 slice -> 1 mPE.
  EXPECT_EQ(nc.mpes_used(), 2u);
}

TEST(NeuroCell, ResetAllowsRepeatRuns) {
  snn::Network net = random_mlp(32, 16, 10, 8);
  NeuroCell nc(default_config());
  nc.load(net);
  snn::SpikeVector in(32);
  in.set(0);
  in.set(5);
  const snn::SpikeVector out1 = nc.step(in);
  nc.reset();
  const snn::SpikeVector out2 = nc.step(in);
  for (std::size_t i = 0; i < out1.size(); ++i)
    EXPECT_EQ(out1.get(i), out2.get(i));
}

}  // namespace
}  // namespace resparc::core
