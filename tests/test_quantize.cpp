// Unit tests for weight discretisation (snn/quantize.hpp).
#include "snn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resparc::snn {
namespace {

TEST(Quantize, OneBitIsSignTimesScale) {
  Matrix w(1, 4, std::vector<float>{0.9f, -0.9f, 0.3f, -0.0f});
  quantize_matrix(w, 1, 1.0f);
  EXPECT_FLOAT_EQ(w(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(w(0, 1), -1.0f);
  // |0.3| rounds to 0 at 1 bit (steps = 1, round(0.3) = 0).
  EXPECT_FLOAT_EQ(w(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 3), 0.0f);
}

TEST(Quantize, PreservesSign) {
  Rng rng(1);
  Matrix w(8, 8);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  Matrix q = w;
  quantize_matrix(q, 4, 3.0f);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float orig = w.flat()[i];
    const float quant = q.flat()[i];
    if (quant != 0.0f) {
      EXPECT_EQ(std::signbit(orig), std::signbit(quant));
    }
  }
}

TEST(Quantize, EightBitsNearlyLossless) {
  Rng rng(2);
  Matrix w(16, 16);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const double mae = quantization_mae(w, 8, 1.0f);
  EXPECT_LT(mae, 1.0 / 255.0);
}

TEST(Quantize, ErrorMonotoneInBits) {
  Rng rng(3);
  Matrix w(32, 32);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  double prev = 1e9;
  for (int bits : {1, 2, 4, 8}) {
    const double mae = quantization_mae(w, bits, 1.0f);
    EXPECT_LT(mae, prev);
    prev = mae;
  }
}

TEST(Quantize, ClampsBeyondScale) {
  Matrix w(1, 1, std::vector<float>{5.0f});
  quantize_matrix(w, 4, 1.0f);
  EXPECT_FLOAT_EQ(w(0, 0), 1.0f);
}

TEST(Quantize, ZeroScaleYieldsZeros) {
  Matrix w(1, 2, std::vector<float>{1.0f, -1.0f});
  quantize_matrix(w, 4, 0.0f);
  EXPECT_FLOAT_EQ(w(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 1), 0.0f);
}

TEST(Quantize, RejectsBadBits) {
  Matrix w(1, 1);
  EXPECT_THROW(quantize_matrix(w, 0, 1.0f), ConfigError);
  EXPECT_THROW(quantize_matrix(w, 9, 1.0f), ConfigError);
}

TEST(Quantize, NetworkQuantizesEveryTrainableLayer) {
  Topology topo("q", Shape3{1, 4, 4},
                {LayerSpec::conv(2, 3), LayerSpec::avg_pool(2),
                 LayerSpec::dense(3)});
  Network net(topo);
  Rng rng(4);
  net.init_random(rng, 1.0f);
  Network q = net;
  quantize_network(q, 2);
  // Conv and dense layers must change (coarse grid), pool has no weights.
  bool conv_changed = false, dense_changed = false;
  for (std::size_t i = 0; i < net.layer(0).weights.size(); ++i)
    conv_changed |= net.layer(0).weights.flat()[i] != q.layer(0).weights.flat()[i];
  for (std::size_t i = 0; i < net.layer(2).weights.size(); ++i)
    dense_changed |= net.layer(2).weights.flat()[i] != q.layer(2).weights.flat()[i];
  EXPECT_TRUE(conv_changed);
  EXPECT_TRUE(dense_changed);
  EXPECT_TRUE(q.layer(1).weights.empty());
}

TEST(Quantize, IdempotentAtSameBits) {
  Rng rng(5);
  Matrix w(8, 8);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  Matrix q1 = w;
  quantize_matrix(q1, 4, 2.0f);
  Matrix q2 = q1;
  quantize_matrix(q2, 4, 2.0f);
  for (std::size_t i = 0; i < q1.size(); ++i)
    EXPECT_FLOAT_EQ(q1.flat()[i], q2.flat()[i]);
}

}  // namespace
}  // namespace resparc::snn
