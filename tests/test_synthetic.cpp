// Unit tests for the synthetic dataset generators (data/synthetic.hpp).
#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace resparc::data {
namespace {

using snn::DatasetKind;

TEST(Synthetic, ShapesPerFamily) {
  SyntheticOptions opt{.count = 10, .seed = 1};
  EXPECT_EQ(make_synthetic(DatasetKind::kMnistLike, opt).shape,
            (Shape3{1, 28, 28}));
  EXPECT_EQ(make_synthetic(DatasetKind::kSvhnLike, opt).shape,
            (Shape3{3, 32, 32}));
  EXPECT_EQ(make_synthetic(DatasetKind::kCifarLike, opt).shape,
            (Shape3{3, 32, 32}));
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticOptions opt{.count = 8, .seed = 42};
  const Dataset a = make_synthetic(DatasetKind::kMnistLike, opt);
  const Dataset b = make_synthetic(DatasetKind::kMnistLike, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.labels[i], b.labels[i]);
    EXPECT_EQ(a.images[i], b.images[i]);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticOptions a{.count = 4, .seed = 1};
  SyntheticOptions b{.count = 4, .seed = 2};
  const Dataset da = make_synthetic(DatasetKind::kMnistLike, a);
  const Dataset db = make_synthetic(DatasetKind::kMnistLike, b);
  EXPECT_NE(da.images[0], db.images[0]);
}

TEST(Synthetic, LabelsBalancedByCycling) {
  SyntheticOptions opt{.count = 50, .seed = 3};
  const Dataset ds = make_synthetic(DatasetKind::kCifarLike, opt);
  std::array<int, 10> histo{};
  for (int l : ds.labels) ++histo[static_cast<std::size_t>(l)];
  for (int h : histo) EXPECT_EQ(h, 5);
}

TEST(Synthetic, PixelsInUnitRange) {
  SyntheticOptions opt{.count = 12, .seed = 4, .noise = 0.2};
  for (auto kind : {DatasetKind::kMnistLike, DatasetKind::kSvhnLike,
                    DatasetKind::kCifarLike}) {
    const Dataset ds = make_synthetic(kind, opt);
    for (const auto& img : ds.images)
      for (float p : img) {
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
      }
  }
}

TEST(Synthetic, MnistLikeIsSparseSvhnLikeIsDense) {
  // The property Fig. 13 depends on: digit-on-black images have mostly
  // near-zero pixels; SVHN/CIFAR-like backgrounds are bright.
  SyntheticOptions opt{.count = 20, .seed = 5, .noise = 0.02};
  auto dark_fraction = [](const Dataset& ds) {
    std::size_t dark = 0, total = 0;
    for (const auto& img : ds.images)
      for (float p : img) {
        dark += p < 0.1f;
        ++total;
      }
    return static_cast<double>(dark) / static_cast<double>(total);
  };
  EXPECT_GT(dark_fraction(make_synthetic(DatasetKind::kMnistLike, opt)), 0.5);
  EXPECT_LT(dark_fraction(make_synthetic(DatasetKind::kSvhnLike, opt)), 0.2);
  EXPECT_LT(dark_fraction(make_synthetic(DatasetKind::kCifarLike, opt)), 0.2);
}

TEST(Synthetic, ClassesAreSeparableByPrototype) {
  // Nearest-prototype classification should beat chance by a wide margin —
  // the property the Fig. 14(a) accuracy study needs.
  SyntheticOptions opt{.count = 100, .seed = 6, .noise = 0.05,
                       .jitter_pixels = 1.0};
  const Dataset ds = make_synthetic(DatasetKind::kMnistLike, opt);
  std::vector<Tensor3> protos;
  for (int c = 0; c < 10; ++c)
    protos.push_back(class_prototype(DatasetKind::kMnistLike, c));
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    double best = 1e18;
    int best_c = -1;
    for (int c = 0; c < 10; ++c) {
      double dist = 0.0;
      const auto flat = protos[static_cast<std::size_t>(c)].flat();
      for (std::size_t p = 0; p < flat.size(); ++p) {
        const double d = static_cast<double>(flat[p] - ds.images[i][p]);
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == ds.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ds.size()), 0.8);
}

TEST(Synthetic, DownsampledHalvesSpatial) {
  SyntheticOptions opt{.count = 6, .seed = 7};
  const Dataset ds = make_synthetic_downsampled(DatasetKind::kSvhnLike, opt);
  EXPECT_EQ(ds.shape, (Shape3{3, 16, 16}));
  EXPECT_EQ(ds.images[0].size(), 768u);  // the MLP benchmarks' input width
  EXPECT_EQ(ds.labels.size(), 6u);
}

TEST(Synthetic, DownsampleAveragesIntensity) {
  SyntheticOptions opt{.count = 6, .seed = 8, .noise = 0.0};
  const Dataset full = make_synthetic(DatasetKind::kCifarLike, opt);
  const Dataset down = make_synthetic_downsampled(DatasetKind::kCifarLike, opt);
  // Total intensity is preserved by 2x2 mean pooling (up to factor 4).
  double sum_full = 0.0, sum_down = 0.0;
  for (float p : full.images[0]) sum_full += p;
  for (float p : down.images[0]) sum_down += p;
  EXPECT_NEAR(sum_down, sum_full / 4.0, sum_full * 0.01);
}

TEST(Synthetic, TakeDropSplit) {
  SyntheticOptions opt{.count = 10, .seed = 9};
  const Dataset ds = make_synthetic(DatasetKind::kMnistLike, opt);
  const Dataset head = ds.take(6);
  const Dataset tail = ds.drop(6);
  EXPECT_EQ(head.size(), 6u);
  EXPECT_EQ(tail.size(), 4u);
  EXPECT_EQ(head.images[0], ds.images[0]);
  EXPECT_EQ(tail.images[0], ds.images[6]);
  EXPECT_THROW(ds.take(11), ConfigError);
}

TEST(Synthetic, PrototypeLabelRangeChecked) {
  EXPECT_THROW(class_prototype(DatasetKind::kMnistLike, 10), ConfigError);
  EXPECT_THROW(class_prototype(DatasetKind::kMnistLike, -1), ConfigError);
}

}  // namespace
}  // namespace resparc::data
