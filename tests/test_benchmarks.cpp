// Tests pinning the six paper benchmarks (snn/benchmarks.hpp) to Fig. 10.
#include "snn/benchmarks.hpp"

#include <gtest/gtest.h>

namespace resparc::snn {
namespace {

TEST(Benchmarks, NeuronTotalsMatchPaperExactly) {
  // The headline property: every topology reproduces the paper's neuron
  // count under its row's counting convention (docs/architecture.md).
  for (const auto& b : paper_benchmarks()) {
    EXPECT_EQ(b.neuron_count(), b.paper_neurons)
        << b.topology.name() << " (" << b.topology.summary() << ")";
  }
}

TEST(Benchmarks, SixBenchmarksThreeDatasets) {
  const auto all = paper_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  int mlp = 0, cnn = 0;
  for (const auto& b : all) b.topology.is_convolutional() ? ++cnn : ++mlp;
  EXPECT_EQ(mlp, 3);
  EXPECT_EQ(cnn, 3);
}

TEST(Benchmarks, MnistMlpShape) {
  const auto b = mnist_mlp();
  EXPECT_EQ(b.topology.summary(), "28x28-800-784-10");
  EXPECT_EQ(b.topology.neuron_count(true), 2378u);
  EXPECT_EQ(b.paper_layers, 4u);  // 28x28 input counts as a layer
  EXPECT_EQ(b.topology.layer_count() + 1, b.paper_layers);
}

TEST(Benchmarks, SvhnMlpShape) {
  const auto b = svhn_mlp();
  EXPECT_EQ(b.topology.input_neurons(), 768u);  // 16x16x3 downsampled
  EXPECT_EQ(b.topology.neuron_count(true), 2778u);
}

TEST(Benchmarks, CifarMlpShape) {
  const auto b = cifar_mlp();
  EXPECT_EQ(b.topology.neuron_count(true), 3778u);
  EXPECT_EQ(b.topology.layer_count() + 1, 5u);  // paper counts 5 layers
}

TEST(Benchmarks, MnistCnnShape) {
  const auto b = mnist_cnn();
  EXPECT_EQ(b.topology.neuron_count(false), 66778u);
  EXPECT_EQ(b.topology.layer_count(), 6u);
  EXPECT_TRUE(b.topology.is_convolutional());
}

TEST(Benchmarks, SvhnCnnShape) {
  EXPECT_EQ(svhn_cnn().topology.neuron_count(false), 124570u);
}

TEST(Benchmarks, CifarCnnShape) {
  EXPECT_EQ(cifar_cnn().topology.neuron_count(false), 231066u);
}

TEST(Benchmarks, PaperSynapseFiguresAreRecorded) {
  // We keep the paper's reported figures alongside ours; the MLP rows
  // follow the "neurons x width" convention exactly.
  EXPECT_EQ(mnist_mlp().paper_synapses, 2378u * 800u);
  EXPECT_EQ(svhn_mlp().paper_synapses, 2778u * 1000u);
  EXPECT_EQ(cifar_mlp().paper_synapses, 3778u * 1000u);
}

TEST(Benchmarks, MlpsAreDenseOnly) {
  for (const auto& b : {mnist_mlp(), svhn_mlp(), cifar_mlp()})
    for (const auto& li : b.topology.layers())
      EXPECT_EQ(li.spec.kind, LayerKind::kDense);
}

TEST(Benchmarks, TenClassOutputs) {
  for (const auto& b : paper_benchmarks())
    EXPECT_EQ(b.topology.output_count(), 10u);
}

TEST(Benchmarks, SmallVariantsBuild) {
  for (auto kind : {DatasetKind::kMnistLike, DatasetKind::kSvhnLike,
                    DatasetKind::kCifarLike}) {
    const Topology mlp = small_mlp_topology(kind);
    const Topology cnn = small_cnn_topology(kind);
    EXPECT_EQ(mlp.output_count(), 10u);
    EXPECT_EQ(cnn.output_count(), 10u);
    EXPECT_TRUE(cnn.is_convolutional());
    EXPECT_LT(mlp.synapse_count(), 300000u);  // genuinely small
  }
}

TEST(Benchmarks, DatasetNames) {
  EXPECT_EQ(to_string(DatasetKind::kMnistLike), "MNIST");
  EXPECT_EQ(to_string(DatasetKind::kSvhnLike), "SVHN");
  EXPECT_EQ(to_string(DatasetKind::kCifarLike), "CIFAR-10");
}

}  // namespace
}  // namespace resparc::snn
