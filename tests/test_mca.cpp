// Unit tests for the behavioral MCA unit (core/mca.hpp).
#include "core/mca.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::core {
namespace {

tech::Memristor device() { return tech::Memristor{tech::pcm_params()}; }

snn::SpikeVector spikes_of(std::initializer_list<int> bits, std::size_t n) {
  snn::SpikeVector v(n);
  for (int b : bits) v.set(static_cast<std::size_t>(b));
  return v;
}

TEST(Mca, ProgramRejectsOversizedSlice) {
  Mca mca(4, device());
  EXPECT_THROW(mca.program(Matrix(5, 4), 0), ConfigError);
  EXPECT_THROW(mca.program(Matrix(4, 5), 0), ConfigError);
}

TEST(Mca, AccumulateMatchesMatVec) {
  Mca mca(4, device());
  Matrix w(2, 3);
  w(0, 0) = 1.0f;
  w(0, 1) = -0.5f;
  w(1, 2) = 0.25f;
  mca.program(w, 0, 1.0f);
  std::vector<float> acc(3, 0.0f);
  const auto in = spikes_of({0, 1}, 8);
  EXPECT_EQ(mca.accumulate(in, acc), 2u);
  EXPECT_FLOAT_EQ(acc[0], 1.0f);
  // -0.5 quantised at 4 bits scale 1: round(0.5*15)/15 = 8/15 ~ 0.5333.
  EXPECT_NEAR(acc[1], -8.0f / 15.0f, 1e-6f);
  EXPECT_NEAR(acc[2], 0.25f, 0.05f);
}

TEST(Mca, InputOffsetSelectsSlice) {
  Mca mca(4, device());
  Matrix w(2, 1, 1.0f);
  mca.program(w, 10, 1.0f);  // rows cover layer inputs 10..11
  std::vector<float> acc(1, 0.0f);
  EXPECT_EQ(mca.accumulate(spikes_of({9}, 16), acc), 0u);
  EXPECT_FLOAT_EQ(acc[0], 0.0f);
  EXPECT_EQ(mca.accumulate(spikes_of({10, 11}, 16), acc), 2u);
  EXPECT_FLOAT_EQ(acc[0], 2.0f);
}

TEST(Mca, SilentInputCostsNothing) {
  Mca mca(4, device());
  mca.program(Matrix(4, 4, 0.5f), 0);
  std::vector<float> acc(4, 0.0f);
  mca.accumulate(snn::SpikeVector(4), acc);
  EXPECT_DOUBLE_EQ(mca.last_read_energy_pj(), 0.0);
  EXPECT_EQ(mca.read_count(), 0u);
}

TEST(Mca, EnergyScalesWithActiveRowsAndCols) {
  Mca mca(8, device());
  mca.program(Matrix(8, 8, 0.5f), 0);
  std::vector<float> acc(8, 0.0f);
  mca.accumulate(spikes_of({0}, 8), acc);
  const double e1 = mca.last_read_energy_pj();
  mca.accumulate(spikes_of({0, 1, 2, 3}, 8), acc);
  EXPECT_NEAR(mca.last_read_energy_pj(), 4.0 * e1, 1e-9);
  EXPECT_EQ(mca.read_count(), 2u);
}

TEST(Mca, SharedScaleQuantisesConsistently) {
  // Two slices of one layer programmed with the layer-wide scale must
  // reproduce the same quantisation grid.
  Mca a(4, device()), b(4, device());
  Matrix w1(1, 1, std::vector<float>{0.3f});
  Matrix w2(1, 1, std::vector<float>{0.3f});
  a.program(w1, 0, 1.0f);
  b.program(w2, 0, 1.0f);
  std::vector<float> acc_a(1, 0.0f), acc_b(1, 0.0f);
  a.accumulate(spikes_of({0}, 4), acc_a);
  b.accumulate(spikes_of({0}, 4), acc_b);
  EXPECT_FLOAT_EQ(acc_a[0], acc_b[0]);
}

TEST(Mca, TracksUsage) {
  Mca mca(16, device());
  mca.program(Matrix(10, 12), 3);
  EXPECT_EQ(mca.rows_used(), 10u);
  EXPECT_EQ(mca.cols_used(), 12u);
  EXPECT_EQ(mca.input_offset(), 3u);
}

}  // namespace
}  // namespace resparc::core
