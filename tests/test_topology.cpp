// Unit tests for the topology IR (snn/topology.hpp).
#include "snn/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::snn {
namespace {

TEST(Topology, DenseShapesAndCounts) {
  Topology t("mlp", Shape3{1, 1, 4},
             {LayerSpec::dense(3), LayerSpec::dense(2)});
  ASSERT_EQ(t.layer_count(), 2u);
  EXPECT_EQ(t.layers()[0].fan_in, 4u);
  EXPECT_EQ(t.layers()[0].neurons, 3u);
  EXPECT_EQ(t.layers()[0].synapses, 12u);
  EXPECT_EQ(t.layers()[1].fan_in, 3u);
  EXPECT_EQ(t.layers()[1].synapses, 6u);
  EXPECT_EQ(t.synapse_count(), 18u);
  EXPECT_EQ(t.neuron_count(true), 4u + 3u + 2u);
  EXPECT_EQ(t.neuron_count(false), 5u);
  EXPECT_FALSE(t.is_convolutional());
  EXPECT_EQ(t.output_count(), 2u);
}

TEST(Topology, ConvSamePaddingKeepsSpatial) {
  Topology t("cnn", Shape3{3, 8, 8}, {LayerSpec::conv(16, 3, true)});
  const auto& li = t.layers()[0];
  EXPECT_EQ(li.out_shape, (Shape3{16, 8, 8}));
  EXPECT_EQ(li.fan_in, 3u * 9u);
  EXPECT_EQ(li.neurons, 16u * 64u);
  EXPECT_EQ(li.synapses, li.neurons * li.fan_in);
  EXPECT_EQ(li.unique_weights, 16u * 27u);
  EXPECT_TRUE(t.is_convolutional());
}

TEST(Topology, ConvValidShrinksSpatial) {
  Topology t("cnn", Shape3{1, 8, 8}, {LayerSpec::conv(4, 3, false)});
  EXPECT_EQ(t.layers()[0].out_shape, (Shape3{4, 6, 6}));
}

TEST(Topology, PoolHalvesSpatial) {
  Topology t("p", Shape3{4, 8, 8}, {LayerSpec::avg_pool(2)});
  const auto& li = t.layers()[0];
  EXPECT_EQ(li.out_shape, (Shape3{4, 4, 4}));
  EXPECT_EQ(li.fan_in, 4u);
  EXPECT_EQ(li.unique_weights, 0u);  // fixed averaging weights
}

TEST(Topology, LayersChainShapes) {
  Topology t("chain", Shape3{1, 28, 28},
             {LayerSpec::conv(8, 3), LayerSpec::avg_pool(2),
              LayerSpec::dense(10)});
  EXPECT_EQ(t.layers()[1].in_shape, (Shape3{8, 28, 28}));
  EXPECT_EQ(t.layers()[2].fan_in, 8u * 14u * 14u);
}

TEST(Topology, RejectsInvalidLayers) {
  EXPECT_THROW(Topology("bad", Shape3{1, 4, 4}, {LayerSpec::dense(0)}),
               ConfigError);
  EXPECT_THROW(Topology("bad", Shape3{1, 4, 4}, {LayerSpec::conv(4, 2)}),
               ConfigError);  // even kernel
  EXPECT_THROW(Topology("bad", Shape3{1, 5, 5}, {LayerSpec::avg_pool(2)}),
               ConfigError);  // window does not divide size
  EXPECT_THROW(Topology("bad", Shape3{1, 4, 4}, {}), ConfigError);
  EXPECT_THROW(Topology("bad", Shape3{1, 2, 2}, {LayerSpec::conv(4, 5, false)}),
               ConfigError);  // valid conv larger than input
}

TEST(Topology, SummaryStringsReadable) {
  Topology mlp("m", Shape3{1, 1, 784}, {LayerSpec::dense(100)});
  EXPECT_EQ(mlp.summary(), "784-100");
  Topology cnn("c", Shape3{3, 32, 32},
               {LayerSpec::conv(64, 3), LayerSpec::avg_pool(2)});
  EXPECT_EQ(cnn.summary(), "32x32x3-64c3-p2");
}

TEST(Topology, LayerKindNames) {
  EXPECT_EQ(to_string(LayerKind::kDense), "dense");
  EXPECT_EQ(to_string(LayerKind::kConv), "conv");
  EXPECT_EQ(to_string(LayerKind::kAvgPool), "avgpool");
}

}  // namespace
}  // namespace resparc::snn
