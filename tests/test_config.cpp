// Unit tests for the RESPARC configuration (core/config.hpp).
#include "core/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::core {
namespace {

TEST(Config, DefaultMatchesPaperFig8) {
  const ResparcConfig c = default_config();
  EXPECT_EQ(c.mca_size, 64u);
  EXPECT_EQ(c.mcas_per_mpe, 4u);
  EXPECT_EQ(c.mpes_per_neurocell(), 16u);   // 4x4 NC dimension
  EXPECT_EQ(c.switches_per_neurocell(), 9u);  // Fig. 8: 16 mPEs, 9 switches
  EXPECT_TRUE(c.event_driven);
  EXPECT_DOUBLE_EQ(c.technology.resparc_clock_mhz, 200.0);
}

TEST(Config, ColumnCapacity) {
  const ResparcConfig c = default_config();
  EXPECT_EQ(c.mcas_per_neurocell(), 64u);
  EXPECT_EQ(c.columns_per_neurocell(), 64u * 64u);
}

TEST(Config, WithMcaSweepsSize) {
  for (std::size_t n : {32u, 64u, 128u}) {
    const ResparcConfig c = config_with_mca(n);
    EXPECT_EQ(c.mca_size, n);
    EXPECT_EQ(c.label(), "RESPARC-" + std::to_string(n));
  }
}

TEST(Config, ValidationRejectsBadValues) {
  ResparcConfig c;
  c.mca_size = 4;
  EXPECT_THROW(c.validate(), ConfigError);
  c = ResparcConfig{};
  c.mcas_per_mpe = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = ResparcConfig{};
  c.nc_dim = 1;
  EXPECT_THROW(c.validate(), ConfigError);
  c = ResparcConfig{};
  c.input_sram_bytes = 16;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Config, BaselineClockIsFasterPerPaper) {
  const ResparcConfig c = default_config();
  // Fig. 8 vs Fig. 9: 200 MHz NeuroCell vs 1 GHz baseline.
  EXPECT_GT(c.technology.baseline_clock_mhz, c.technology.resparc_clock_mhz);
}

}  // namespace
}  // namespace resparc::core
