// Unit tests for the programmable switch (core/switch.hpp).
#include "core/switch.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace resparc::core {
namespace {

TEST(Switch, ForwardsNonZeroPackets) {
  ProgrammableSwitch sw(0, /*zero_check=*/true);
  SpikePacket p;
  p.payload = 0xdeadbeef;
  p.dst_mpe = 3;
  EXPECT_TRUE(sw.offer(p));
  ASSERT_TRUE(sw.pending());
  const SpikePacket out = sw.deliver();
  EXPECT_EQ(out.payload, 0xdeadbeefu);
  EXPECT_EQ(out.dst_mpe, 3);
  EXPECT_EQ(sw.counters().forwarded, 1u);
}

TEST(Switch, ZeroCheckDropsAllZeroPackets) {
  // Section 3.2: "zero-check logic ... prevents data transfers resulting
  // from insignificant spike-packets".
  ProgrammableSwitch sw(1, true);
  SpikePacket zero;
  zero.payload = 0;
  EXPECT_FALSE(sw.offer(zero));
  EXPECT_FALSE(sw.pending());
  EXPECT_EQ(sw.counters().dropped_zero, 1u);
  EXPECT_EQ(sw.counters().forwarded, 0u);
}

TEST(Switch, ZeroCheckDisabledForwardsEverything) {
  ProgrammableSwitch sw(2, false);
  SpikePacket zero;
  zero.payload = 0;
  EXPECT_TRUE(sw.offer(zero));
  EXPECT_TRUE(sw.pending());
  sw.deliver();
  EXPECT_EQ(sw.counters().dropped_zero, 0u);
}

TEST(Switch, FifoArbitrationOrder) {
  ProgrammableSwitch sw(3, true);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    SpikePacket p;
    p.payload = i;
    sw.offer(p);
  }
  for (std::uint64_t i = 1; i <= 5; ++i) EXPECT_EQ(sw.deliver().payload, i);
}

TEST(Switch, DeliverOnEmptyThrows) {
  ProgrammableSwitch sw(4, true);
  EXPECT_THROW(sw.deliver(), ConfigError);
}

TEST(Switch, HighWaterMarkTracksQueue) {
  ProgrammableSwitch sw(5, false);
  SpikePacket p;
  p.payload = 1;
  sw.offer(p);
  sw.offer(p);
  sw.offer(p);
  EXPECT_EQ(sw.counters().buffered_max, 3u);
  sw.deliver();
  EXPECT_EQ(sw.counters().buffered_max, 3u);
}

TEST(Switch, ResetCounters) {
  ProgrammableSwitch sw(6, true);
  SpikePacket p;
  p.payload = 7;
  sw.offer(p);
  sw.deliver();
  sw.reset_counters();
  EXPECT_EQ(sw.counters().forwarded, 0u);
}

}  // namespace
}  // namespace resparc::core
