// Degraded-replica serving (docs/reliability.md): tenants binding
// per-replica fault seeds get canary-checked replicas — a replica whose
// first-checkout canary replay diverges from the pristine signature is
// retired, batches retry onto healthy replicas with bounded backoff, and
// the RS-REPLICA-DEGRADED / RS-RETRY-EXHAUSTED codes surface when
// nothing healthy remains.  Results served through a degraded fleet must
// stay bit-identical, in order, to a fault-free server.
#include <gtest/gtest.h>

#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "serve/canary.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::serve {
namespace {

/// Shared traced workload (compiles are slow; build once per suite).
class ServeDegradedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::PipelineOptions opt;
    opt.images = 6;
    opt.timesteps = 8;
    opt.seed = 11;
    opt.threads = 1;
    workload_ = new api::Workload(
        api::Pipeline(opt)
            .dataset(snn::DatasetKind::kMnistLike)
            .topology(snn::small_mlp_topology(snn::DatasetKind::kMnistLike))
            .run());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  /// A trace-replay tenant whose backend options carry real fault rates
  /// — dormant (enabled=false) until a replica binds a non-zero chip
  /// seed through `seeds`.
  static TenantSpec faulty_tenant(std::vector<std::uint64_t> seeds) {
    TenantSpec spec;
    spec.backend = "resparc-64";
    spec.topology = workload_->topology();
    spec.options.resparc.faults.stuck_off_rate = 0.02;
    spec.options.resparc.faults.stuck_on_rate = 0.01;
    spec.options.resparc.faults.programming_sigma = 0.1;
    spec.replica_chip_seeds = std::move(seeds);
    return spec;
  }

  static const snn::SpikeTrace& trace(std::size_t i) {
    return workload_->traces[i % workload_->traces.size()];
  }

  static api::Workload* workload_;
};

api::Workload* ServeDegradedTest::workload_ = nullptr;

/// The ServeError code thrown by `fn` ("" when none).
template <typename Fn>
std::string code_of(Fn&& fn) {
  try {
    fn();
  } catch (const ServeError& e) {
    return e.code();
  } catch (...) {
  }
  return "";
}

// A degraded replica is detected at first checkout, retired, and every
// request still completes — bit-identically to a fault-free server.
TEST_F(ServeDegradedTest, DegradedReplicaRetiresAndServingContinues) {
  constexpr std::size_t kRequests = 10;

  // Reference: the same stream through a server with no fault seeds.
  std::vector<Response> reference;
  {
    Server server({.replicas = 2, .dispatchers = 2});
    server.add_tenant("t", faulty_tenant({}));
    const SessionId s = server.open_session("t");
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i)
      futures.push_back(server.submit(s, {.trace = trace(i)}));
    for (auto& f : futures) reference.push_back(f.get());
    EXPECT_EQ(server.stats().canary_checks, 0u);  // canary stays unarmed
    EXPECT_EQ(server.stats().degraded_replicas, 0u);
  }

  // Replica 1 is a faulty chip instance; replicas check out back-first,
  // so the very first batch trips over it and must retry onto the
  // pristine replica 0.
  Server server({.replicas = 2, .dispatchers = 2});
  server.add_tenant("t", faulty_tenant({0, 0xBADC0FFEEull}));

  std::mutex order_mutex;
  std::vector<std::uint64_t> delivered;
  SessionOptions opts;
  opts.on_response = [&](const Response& r) {
    std::lock_guard<std::mutex> lock(order_mutex);
    delivered.push_back(r.sequence);
  };
  const SessionId s = server.open_session("t", std::move(opts));
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(s, {.trace = trace(i)}));
  server.drain();

  for (std::size_t i = 0; i < kRequests; ++i) {
    const Response r = futures[i].get();
    EXPECT_EQ(r.sequence, i);
    // Bit-identical to the fault-free run: degraded replicas never serve.
    EXPECT_EQ(r.report.energy_pj, reference[i].report.energy_pj) << i;
    EXPECT_EQ(r.report.latency_ns, reference[i].report.latency_ns) << i;
  }
  {
    std::lock_guard<std::mutex> lock(order_mutex);
    ASSERT_EQ(delivered.size(), kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) EXPECT_EQ(delivered[i], i);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.degraded_replicas, 1u);
  EXPECT_GE(stats.retries, 1u);
  // Both replicas were probed exactly once.
  EXPECT_EQ(stats.canary_checks, 2u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
}

// When every replica is a bad chip the tenant degrades to fail-fast:
// in-flight and queued work surfaces RS-REPLICA-DEGRADED, new submits
// are refused with the same code, and drain()/shutdown() never hang.
TEST_F(ServeDegradedTest, AllReplicasDegradedFailsRequestsWithCode) {
  Server server({.replicas = 2, .dispatchers = 1, .batch_max = 1});
  server.add_tenant("t", faulty_tenant({0xBAD1, 0xBAD2}));
  const SessionId s = server.open_session("t");

  // The dispatcher may retire both replicas while we are still
  // submitting: every request either fails at admission or through its
  // future, always with RS-REPLICA-DEGRADED.
  std::vector<std::future<Response>> futures;
  std::size_t refused_at_submit = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    try {
      futures.push_back(server.submit(s, {.trace = trace(i)}));
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), kErrReplicaDegraded);
      ++refused_at_submit;
    }
  }
  server.drain();

  EXPECT_LT(refused_at_submit, 6u) << "no request ever reached a replica";
  for (auto& f : futures) {
    EXPECT_EQ(code_of([&] { f.get(); }), kErrReplicaDegraded);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.degraded_replicas, 2u);
  EXPECT_EQ(stats.canary_checks, 2u);

  // The tenant now rejects at admission: no healthy silicon remains.
  EXPECT_EQ(code_of([&] { server.submit(s, {.trace = trace(0)}); }),
            kErrReplicaDegraded);
  server.shutdown();
}

// max_retries bounds how many degraded replicas one batch may burn
// through; past the budget it is abandoned with RS-RETRY-EXHAUSTED even
// though healthy replicas remain for later batches.
TEST_F(ServeDegradedTest, RetryBudgetExhaustionSurfacesByCode) {
  Server server({.replicas = 2,
                 .dispatchers = 1,
                 .batch_max = 1,
                 .max_retries = 0});
  server.add_tenant("t", faulty_tenant({0, 0xBAD}));
  const SessionId s = server.open_session("t");

  // First batch checks out the faulty replica 1, has no retry budget,
  // and must be abandoned.
  auto doomed = server.submit(s, {.trace = trace(0)});
  server.drain();
  EXPECT_EQ(code_of([&] { doomed.get(); }), kErrRetryExhausted);
  EXPECT_GE(server.stats().retry_exhausted, 1u);

  // The pristine replica 0 still serves follow-up requests.
  auto ok = server.submit(s, {.trace = trace(1)});
  EXPECT_NO_THROW(ok.get());
  EXPECT_EQ(server.stats().degraded_replicas, 1u);
}

// An armed canary over pristine replicas is a no-op: every probe passes
// and the results match a server that never armed it.
TEST_F(ServeDegradedTest, CanaryOnPristineReplicasChangesNothing) {
  constexpr std::size_t kRequests = 6;
  auto run = [&](std::vector<std::uint64_t> seeds) {
    Server server({.replicas = 2, .dispatchers = 2});
    server.add_tenant("t", faulty_tenant(std::move(seeds)));
    const SessionId s = server.open_session("t");
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i)
      futures.push_back(server.submit(s, {.trace = trace(i)}));
    std::vector<Response> responses;
    for (auto& f : futures) responses.push_back(f.get());
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.degraded_replicas, 0u);
    EXPECT_EQ(stats.retry_exhausted, 0u);
    return responses;
  };

  const auto plain = run({});
  const auto canaried = run({0, 0});
  ASSERT_EQ(plain.size(), canaried.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].report.energy_pj, canaried[i].report.energy_pj) << i;
    EXPECT_EQ(plain[i].report.latency_ns, canaried[i].report.latency_ns) << i;
  }
}

// The canary trace itself is a pure function of (topology, seed): the
// probe is reproducible across servers and runs.
TEST_F(ServeDegradedTest, CanaryTraceIsDeterministic) {
  const snn::SpikeTrace a =
      make_canary_trace(workload_->topology(), 4, 0x5EEDull);
  const snn::SpikeTrace b =
      make_canary_trace(workload_->topology(), 4, 0x5EEDull);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  std::size_t set_bits = 0;
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    ASSERT_EQ(a.layers[l].size(), b.layers[l].size());
    for (std::size_t t = 0; t < a.layers[l].size(); ++t) {
      EXPECT_EQ(a.layers[l][t].count(), b.layers[l][t].count());
      set_bits += a.layers[l][t].count();
    }
  }
  EXPECT_GT(set_bits, 0u) << "an all-silent canary cannot detect anything";
  // A different seed probes with a different pattern.
  const snn::SpikeTrace c =
      make_canary_trace(workload_->topology(), 4, 0x5EEEull);
  std::size_t other_bits = 0;
  for (const auto& layer : c.layers)
    for (const auto& step : layer) other_bits += step.count();
  EXPECT_NE(set_bits, other_bits);
}

}  // namespace
}  // namespace resparc::serve
