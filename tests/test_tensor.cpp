// Unit tests for Tensor3 (common/tensor.hpp) and units helpers.
#include "common/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace resparc {
namespace {

TEST(Shape3, SizeIsProduct) {
  Shape3 s{3, 4, 5};
  EXPECT_EQ(s.size(), 60u);
}

TEST(Shape3, Equality) {
  EXPECT_EQ((Shape3{1, 2, 3}), (Shape3{1, 2, 3}));
  EXPECT_NE((Shape3{1, 2, 3}), (Shape3{3, 2, 1}));
}

TEST(Tensor3, ZeroInitialised) {
  Tensor3 t(Shape3{2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t(1, 2, 3), 0.0f);
}

TEST(Tensor3, ChwLayout) {
  Tensor3 t(Shape3{2, 2, 2});
  t(1, 0, 1) = 5.0f;  // index (1*2+0)*2+1 = 5
  EXPECT_EQ(t.flat()[5], 5.0f);
}

TEST(Tensor3, FlatConstructorChecksSize) {
  EXPECT_THROW(Tensor3(Shape3{1, 2, 2}, std::vector<float>{1.0f}), ShapeError);
}

TEST(Tensor3, FillOverwrites) {
  Tensor3 t(Shape3{1, 2, 2});
  t.fill(3.0f);
  EXPECT_EQ(t(0, 1, 1), 3.0f);
}

TEST(Units, WattsOverNs) {
  // 1 W for 1 ns = 1 nJ = 1000 pJ.
  EXPECT_DOUBLE_EQ(watts_over_ns_to_pj(1.0, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(watts_over_ns_to_pj(0.001, 1000.0), 1000.0);
}

TEST(Units, ClockPeriod) {
  EXPECT_DOUBLE_EQ(mhz_to_period_ns(200.0), 5.0);
  EXPECT_DOUBLE_EQ(mhz_to_period_ns(1000.0), 1.0);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(pj_to_uj(1e6), 1.0);
  EXPECT_DOUBLE_EQ(ns_to_us(1500.0), 1.5);
}

}  // namespace
}  // namespace resparc
