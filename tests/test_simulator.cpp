// Unit tests for the event-driven functional simulator (snn/simulator.hpp).
#include "snn/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "snn/quantize.hpp"

namespace resparc::snn {
namespace {

/// A 2-input, 2-output single-layer net with hand weights.
Network tiny_dense() {
  Topology topo("tiny", Shape3{1, 1, 2}, {LayerSpec::dense(2)});
  Network net(topo);
  auto& w = net.layer(0).weights;
  w(0, 0) = 1.0f;  // input 0 -> output 0
  w(1, 1) = 1.0f;  // input 1 -> output 1
  net.layer(0).neuron.v_threshold = 1.0;
  return net;
}

SimConfig det_config(std::size_t T) {
  SimConfig cfg;
  cfg.timesteps = T;
  cfg.encoder.poisson = false;
  return cfg;
}

TEST(Simulator, IdentityLayerPassesSpikesThrough) {
  Network net = tiny_dense();
  Simulator sim(net, det_config(8));
  Rng rng(1);
  std::vector<float> img{1.0f, 0.0f};
  const SimResult r = sim.run(img, rng);
  // Input 0 spikes every step; weight 1 >= vth 1 -> output 0 fires each step.
  EXPECT_EQ(r.output_spike_counts[0], 8u);
  EXPECT_EQ(r.output_spike_counts[1], 0u);
  EXPECT_EQ(r.predicted_class, 0u);
}

TEST(Simulator, TraceShapeMatchesRun) {
  Network net = tiny_dense();
  Simulator sim(net, det_config(5));
  Rng rng(2);
  std::vector<float> img{1.0f, 1.0f};
  const SimResult r = sim.run(img, rng);
  ASSERT_EQ(r.trace.layer_count(), 2u);  // input + 1 layer
  EXPECT_EQ(r.trace.timesteps(), 5u);
  EXPECT_EQ(r.trace.layers[0][0].size(), 2u);
  EXPECT_EQ(r.trace.layers[1][0].size(), 2u);
}

TEST(Simulator, RecordTraceOffLeavesTraceEmpty) {
  Network net = tiny_dense();
  SimConfig cfg = det_config(5);
  cfg.record_trace = false;
  Simulator sim(net, cfg);
  Rng rng(3);
  std::vector<float> img{1.0f, 0.0f};
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.trace.layer_count(), 0u);
  EXPECT_EQ(r.output_spike_counts[0], 5u);  // classification still works
}

TEST(Simulator, HalfWeightHalvesRate) {
  Topology topo("t", Shape3{1, 1, 1}, {LayerSpec::dense(1)});
  Network net(topo);
  net.layer(0).weights(0, 0) = 0.5f;
  net.layer(0).neuron.v_threshold = 1.0;
  Simulator sim(net, det_config(40));
  Rng rng(4);
  std::vector<float> img{1.0f};
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.output_spike_counts[0], 20u);  // fires every other step
}

TEST(Simulator, InputSizeChecked) {
  Network net = tiny_dense();
  Simulator sim(net, det_config(4));
  Rng rng(5);
  std::vector<float> img{1.0f};  // wrong size
  EXPECT_THROW(sim.run(img, rng), ConfigError);
}

TEST(Simulator, ConvLayerMatchesManualConvolution) {
  // 1x3x3 input, one 3x3 'same' filter of all ones, threshold high enough
  // to never fire: membrane after 1 step = conv(input).
  Topology topo("c", Shape3{1, 3, 3}, {LayerSpec::conv(1, 3, true)});
  Network net(topo);
  for (std::size_t r = 0; r < 9; ++r) net.layer(0).weights(r, 0) = 1.0f;
  net.layer(0).neuron.v_threshold = 100.0;
  Simulator sim(net, det_config(1));
  Rng rng(6);
  // Single bright pixel at the centre -> after one step the centre output
  // receives exactly one contribution; all 9 outputs receive exactly 1.
  std::vector<float> img(9, 0.0f);
  img[4] = 1.0f;
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.trace.layers[1][0].count(), 0u);  // no fires (high vth)
  EXPECT_EQ(r.output_spike_counts[0] + r.output_spike_counts[4], 0u);
}

TEST(Simulator, ConvSpikesWhenDriveSufficient) {
  Topology topo("c", Shape3{1, 3, 3}, {LayerSpec::conv(1, 3, true)});
  Network net(topo);
  for (std::size_t r = 0; r < 9; ++r) net.layer(0).weights(r, 0) = 1.0f;
  net.layer(0).neuron.v_threshold = 1.0;
  Simulator sim(net, det_config(1));
  Rng rng(7);
  std::vector<float> img(9, 0.0f);
  img[4] = 1.0f;  // centre spikes; every output neuron sees weight 1
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.trace.layers[1][0].count(), 9u);  // all 9 outputs fire
}

TEST(Simulator, PoolAveragesSpatially) {
  Topology topo("p", Shape3{1, 2, 2}, {LayerSpec::avg_pool(2)});
  Network net(topo);
  net.layer(0).neuron.v_threshold = 1.0;
  Simulator sim(net, det_config(4));
  Rng rng(8);
  std::vector<float> img{1.0f, 1.0f, 1.0f, 1.0f};  // all 4 inputs spike/step
  const SimResult r = sim.run(img, rng);
  // Drive = 4 * 1/4 = 1 per step -> pool neuron fires every step.
  EXPECT_EQ(r.output_spike_counts[0], 4u);
}

TEST(Simulator, PoolQuarterDriveFiresQuarterRate) {
  Topology topo("p", Shape3{1, 2, 2}, {LayerSpec::avg_pool(2)});
  Network net(topo);
  net.layer(0).neuron.v_threshold = 1.0;
  Simulator sim(net, det_config(16));
  Rng rng(9);
  std::vector<float> img{1.0f, 0.0f, 0.0f, 0.0f};
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.output_spike_counts[0], 4u);  // 16 * 1/4
}

TEST(Simulator, TotalSpikesSumsAllLayers) {
  Network net = tiny_dense();
  Simulator sim(net, det_config(8));
  Rng rng(10);
  std::vector<float> img{1.0f, 1.0f};
  const SimResult r = sim.run(img, rng);
  EXPECT_EQ(r.total_spikes, 8u * 2u + 8u * 2u);  // inputs + outputs
}

TEST(Calibration, HitsTargetActivityOnRandomNet) {
  Topology topo("r", Shape3{1, 1, 64},
                {LayerSpec::dense(128), LayerSpec::dense(32)});
  Network net(topo);
  Rng rng(11);
  net.init_random(rng, 1.0f);
  std::vector<std::vector<float>> images;
  for (int i = 0; i < 4; ++i) {
    std::vector<float> img(64);
    for (auto& p : img) p = static_cast<float>(rng.uniform(0.0, 1.0));
    images.push_back(std::move(img));
  }
  SimConfig cfg = det_config(24);
  const double target = 0.10;
  calibrate_thresholds(net, images, cfg, rng, target);
  // Measure realised activity on the hidden layer.
  Simulator sim(net, cfg);
  double act = 0.0;
  for (const auto& img : images) {
    const SimResult r = sim.run(img, rng);
    act += r.trace.layer_activity(1);
  }
  act /= static_cast<double>(images.size());
  EXPECT_GT(act, 0.02);
  EXPECT_LT(act, 0.35);
}

TEST(Calibration, RejectsBadTarget) {
  Network net = tiny_dense();
  std::vector<std::vector<float>> images{{1.0f, 0.0f}};
  Rng rng(12);
  EXPECT_THROW(
      calibrate_thresholds(net, images, det_config(4), rng, 0.0),
      ConfigError);
  EXPECT_THROW(
      calibrate_thresholds(net, images, det_config(4), rng, 1.0),
      ConfigError);
}

TEST(EvaluateAccuracy, PerfectOnSeparableToy) {
  // Identity net: class = index of the bright pixel.
  Network net = tiny_dense();
  SimConfig cfg = det_config(8);
  std::vector<std::vector<float>> images{{1.0f, 0.0f}, {0.0f, 1.0f}};
  std::vector<int> labels{0, 1};
  Rng rng(13);
  EXPECT_DOUBLE_EQ(evaluate_accuracy(net, cfg, images, labels, rng), 1.0);
}

}  // namespace
}  // namespace resparc::snn
