// Reliability study tests: the device non-idealities that motivate the
// paper's "small crossbars are the reliable ones" premise (section 1),
// exercised end-to-end through the electrical crossbar model.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/techaware.hpp"
#include "tech/crossbar_model.hpp"

namespace resparc::tech {
namespace {

Memristor ideal_device() {
  MemristorParams p = pcm_params();
  p.sneak_leak_fraction = 0.0;
  return Memristor{p};
}

/// Mean absolute current error between a noisy and an ideal array over
/// random binary inputs.
double mean_current_error(std::size_t n, const CrossbarNonIdealities& ni,
                          std::uint64_t seed) {
  Rng rng(seed);
  Matrix mags(n, n);
  for (float& m : mags.flat()) m = static_cast<float>(rng.uniform(0.0, 1.0));

  CrossbarModel clean(n, n, ideal_device());
  clean.program(mags);
  CrossbarModel noisy(n, n, ideal_device());
  noisy.program(mags, ni, &rng);

  std::vector<std::uint8_t> spikes(n);
  std::vector<double> ic(n), in(n);
  double err = 0.0;
  int samples = 0;
  for (int trial = 0; trial < 8; ++trial) {
    for (auto& s : spikes) s = rng.bernoulli(0.2);
    clean.read_currents(spikes, ic);
    noisy.read_currents(spikes, in);
    for (std::size_t c = 0; c < n; ++c) {
      err += std::abs(ic[c] - in[c]);
      ++samples;
    }
  }
  return err / samples;
}

TEST(Reliability, StuckDevicesDistortCurrents) {
  CrossbarNonIdealities ni;
  ni.stuck_off_probability = 0.05;
  EXPECT_GT(mean_current_error(32, ni, 1), 0.0);
}

TEST(Reliability, ErrorGrowsWithDefectRate) {
  double prev = 0.0;
  for (double p : {0.01, 0.05, 0.2}) {
    CrossbarNonIdealities ni;
    ni.stuck_off_probability = p;
    const double err = mean_current_error(32, ni, 2);
    EXPECT_GT(err, prev);
    prev = err;
  }
}

TEST(Reliability, ProgrammingNoiseErrorGrowsWithSigma) {
  double prev = -1.0;
  for (double sigma : {0.01, 0.05, 0.2}) {
    CrossbarNonIdealities ni;
    ni.programming_sigma = sigma;
    const double err = mean_current_error(32, ni, 3);
    EXPECT_GT(err, prev);
    prev = err;
  }
}

TEST(Reliability, IrDropErrorGrowsWithArraySize) {
  // The *relative* signal loss from wire resistance grows with the array
  // — the quantitative form of "large crossbars are infeasible".
  CrossbarNonIdealities ni;
  ni.wire_resistance_ohm = 10.0;
  double prev_att = 1.0;
  for (std::size_t n : {16u, 64u, 256u}) {
    CrossbarModel xbar(n, n, ideal_device());
    Matrix mags(n, n, 1.0f);
    xbar.program(mags, ni);
    const double att = xbar.worst_case_ir_attenuation();
    EXPECT_LT(att, prev_att);
    prev_att = att;
  }
  EXPECT_LT(prev_att, 0.8);  // 256x256 at 10 ohm/segment is badly degraded
}

TEST(Reliability, PermissibleSizesPrefixProperty) {
  // If size N is rejected, every larger size must also be rejected.
  const std::vector<std::size_t> sizes{16, 32, 64, 128, 256, 512};
  for (double wire : {5.0, 15.0, 40.0}) {
    const auto ok =
        core::permissible_sizes(sizes, default_technology(), wire, 0.8);
    // `ok` must be a prefix of `sizes`.
    ASSERT_LE(ok.size(), sizes.size());
    for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_EQ(ok[i], sizes[i]);
  }
}

TEST(Reliability, AgSiToleratesMoreWireThanPcm) {
  // Higher device resistance makes the wire drop relatively smaller, so
  // Ag-Si sustains larger arrays under the same wiring (the behaviour the
  // technology_explorer example demonstrates).
  const std::vector<std::size_t> sizes{32, 64, 128, 256, 512};
  const auto pcm =
      core::permissible_sizes(sizes, pcm_technology(), 15.0, 0.75);
  const auto agsi =
      core::permissible_sizes(sizes, agsi_technology(), 15.0, 0.75);
  EXPECT_GE(agsi.size(), pcm.size());
  EXPECT_LT(pcm.size(), sizes.size());  // the constraint actually binds
}

TEST(Reliability, SneakFractionRaisesAnalyticEnergy) {
  MemristorParams leaky = pcm_params();
  leaky.sneak_leak_fraction = 0.05;
  CrossbarModel with(64, 64, Memristor{leaky});
  CrossbarModel without(64, 64, ideal_device());
  Matrix mags(64, 64, 0.5f);
  with.program(mags);
  without.program(mags);
  EXPECT_GT(with.mean_read_energy_pj(6.0, 64.0),
            without.mean_read_energy_pj(6.0, 64.0));
}

}  // namespace
}  // namespace resparc::tech
