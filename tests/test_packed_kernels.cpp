// Property tests of the packed 64-bit spike datapath primitives
// (docs/performance.md): the popcount/mask kernels against naive
// references, and the packed crossbar read paths against their byte/
// index twins.  Every comparison is exact — the packed datapath's
// contract is bit-for-bit equality, not tolerance.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "core/mca.hpp"
#include "snn/trace.hpp"
#include "tech/crossbar_model.hpp"
#include "tech/memristor.hpp"

namespace resparc {
namespace {

// ------------------------------------------------------------ references --

std::size_t naive_popcount(const std::vector<std::uint64_t>& a,
                           std::size_t bits) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < bits; ++i)
    n += (a[i >> 6] >> (i & 63)) & 1u;
  return n;
}

std::size_t naive_dot(const std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b, std::size_t bits) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < bits; ++i)
    n += ((a[i >> 6] >> (i & 63)) & (b[i >> 6] >> (i & 63))) & 1u;
  return n;
}

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> out(words);
  for (auto& w : out) w = rng();
  return out;
}

/// Ascending indices of set bits below `bits` (the AER list of a mask).
std::vector<std::uint32_t> active_list(const std::vector<std::uint64_t>& mask,
                                       std::size_t bits) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < bits; ++i)
    if ((mask[i >> 6] >> (i & 63)) & 1u) out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

// The length sweep every kernel property runs over: zero, sub-word,
// word-aligned, and straddling tails.
const std::size_t kLengths[] = {0, 1, 5, 63, 64, 65, 127, 128, 200, 256, 1000};

// --------------------------------------------------------- popcount_bits --

TEST(PackedKernels, PopcountBitsMatchesNaive) {
  Rng rng(11);
  for (const std::size_t bits : kLengths) {
    const std::size_t words = (bits + 63) / 64 + 1;  // +1: slack past the end
    for (int trial = 0; trial < 8; ++trial) {
      const auto a = random_words(rng, words);
      EXPECT_EQ(kernels::popcount_bits(a.data(), bits),
                naive_popcount(a, bits))
          << "bits=" << bits;
    }
  }
}

TEST(PackedKernels, PopcountBitsAllZeroAllOnes) {
  for (const std::size_t bits : kLengths) {
    const std::size_t words = (bits + 63) / 64 + 1;
    const std::vector<std::uint64_t> zero(words, 0);
    const std::vector<std::uint64_t> ones(words, ~std::uint64_t{0});
    EXPECT_EQ(kernels::popcount_bits(zero.data(), bits), 0u);
    EXPECT_EQ(kernels::popcount_bits(ones.data(), bits), bits);
  }
}

// Stale tail bits (at and above `bits`) must never leak into the count.
TEST(PackedKernels, PopcountBitsIgnoresStaleTailBits) {
  for (const std::size_t bits : {1u, 63u, 65u, 100u, 130u}) {
    const std::size_t words = (bits + 63) / 64;
    std::vector<std::uint64_t> a(words, 0);
    // Plant ONLY stale bits: everything at or above `bits` set, rest clear.
    for (std::size_t i = bits; i < words * 64; ++i)
      a[i >> 6] |= std::uint64_t{1} << (i & 63);
    EXPECT_EQ(kernels::popcount_bits(a.data(), bits), 0u) << "bits=" << bits;
  }
}

// ---------------------------------------------------------- popcount_dot --

TEST(PackedKernels, PopcountDotMatchesNaive) {
  Rng rng(12);
  for (const std::size_t bits : kLengths) {
    const std::size_t words = (bits + 63) / 64 + 1;
    for (int trial = 0; trial < 8; ++trial) {
      const auto a = random_words(rng, words);
      const auto b = random_words(rng, words);
      EXPECT_EQ(kernels::popcount_dot(a.data(), b.data(), bits),
                naive_dot(a, b, bits))
          << "bits=" << bits;
    }
  }
}

TEST(PackedKernels, PopcountDotEdgeOperands) {
  Rng rng(13);
  for (const std::size_t bits : kLengths) {
    const std::size_t words = (bits + 63) / 64 + 1;
    const auto a = random_words(rng, words);
    const std::vector<std::uint64_t> zero(words, 0);
    const std::vector<std::uint64_t> ones(words, ~std::uint64_t{0});
    // x . 0 = 0; x . 1 = popcount(x); commutative.
    EXPECT_EQ(kernels::popcount_dot(a.data(), zero.data(), bits), 0u);
    EXPECT_EQ(kernels::popcount_dot(a.data(), ones.data(), bits),
              kernels::popcount_bits(a.data(), bits));
    EXPECT_EQ(kernels::popcount_dot(a.data(), ones.data(), bits),
              kernels::popcount_dot(ones.data(), a.data(), bits));
  }
}

// -------------------------------------------------- masked_row_accumulate --

TEST(PackedKernels, MaskedRowAccumulateMatchesIndexPathExactly) {
  Rng rng(14);
  for (const std::size_t rows : {1u, 63u, 64u, 65u, 130u, 300u}) {
    const std::size_t stride = 24;
    const std::size_t cols = 24;
    std::vector<float> w(rows * stride);
    for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (int trial = 0; trial < 4; ++trial) {
      auto mask = random_words(rng, (rows + 63) / 64);
      const auto rows_list = active_list(mask, rows);

      std::vector<float> acc_packed(cols, 0.25f);
      std::vector<float> acc_index(cols, 0.25f);
      kernels::masked_row_accumulate(w.data(), stride, cols, mask.data(),
                                     rows, acc_packed.data());
      kernels::accumulate_rows(w.data(), stride, cols, rows_list,
                               acc_index.data());
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(acc_packed[c], acc_index[c])  // bit-for-bit, not NEAR
            << "rows=" << rows << " col=" << c;
    }
  }
}

// A column slice of a wider matrix (cols < stride) — the simulator's
// within-trace partitioning shape.
TEST(PackedKernels, MaskedRowAccumulateColumnSlice) {
  Rng rng(15);
  const std::size_t rows = 100, stride = 40, cols = 17;
  std::vector<float> w(rows * stride);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  auto mask = random_words(rng, (rows + 63) / 64);
  const auto rows_list = active_list(mask, rows);

  std::vector<float> acc_packed(cols, 0.0f), acc_index(cols, 0.0f);
  kernels::masked_row_accumulate(w.data(), stride, cols, mask.data(), rows,
                                 acc_packed.data());
  kernels::accumulate_rows(w.data(), stride, cols, rows_list,
                           acc_index.data());
  EXPECT_EQ(acc_packed, acc_index);
}

// Stale mask bits at and above `rows` must contribute nothing.
TEST(PackedKernels, MaskedRowAccumulateIgnoresStaleTailBits) {
  const std::size_t rows = 70, cols = 8;
  std::vector<float> w(rows * cols, 1.0f);
  std::vector<std::uint64_t> mask(2, 0);
  mask[1] = ~std::uint64_t{0} << (rows - 64);  // only bits >= rows set
  std::vector<float> acc(cols, 0.0f);
  kernels::masked_row_accumulate(w.data(), cols, cols, mask.data(), rows,
                                 acc.data());
  for (float v : acc) EXPECT_EQ(v, 0.0f);
}

TEST(PackedKernels, MaskedRowAccumulateAllRows) {
  Rng rng(16);
  const std::size_t rows = 67, cols = 5;
  std::vector<float> w(rows * cols);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<std::uint64_t> mask(2, ~std::uint64_t{0});
  std::vector<std::uint32_t> all(rows);
  for (std::size_t r = 0; r < rows; ++r) all[r] = static_cast<std::uint32_t>(r);

  std::vector<float> acc_packed(cols, 0.0f), acc_index(cols, 0.0f);
  kernels::masked_row_accumulate(w.data(), cols, cols, mask.data(), rows,
                                 acc_packed.data());
  kernels::accumulate_rows(w.data(), cols, cols, all, acc_index.data());
  EXPECT_EQ(acc_packed, acc_index);
}

// -------------------------------------------- CrossbarModel packed reads --

TEST(PackedKernels, CrossbarPackedReadMatchesByteRead) {
  Rng rng(17);
  const std::size_t rows = 100, cols = 32;  // non-multiple-of-64 rows
  tech::Memristor device{tech::MemristorParams{}};
  tech::CrossbarModel xbar(rows, cols, device);
  Matrix mags(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      mags.at(r, c) = static_cast<float>(rng.uniform());
  xbar.program(mags);

  for (int trial = 0; trial < 6; ++trial) {
    std::vector<std::uint8_t> bytes(rows);
    for (auto& b : bytes) b = rng.bernoulli(0.3) ? 1 : 0;
    std::vector<std::uint64_t> words((rows + 63) / 64, 0);
    for (std::size_t r = 0; r < rows; ++r)
      if (bytes[r]) words[r >> 6] |= std::uint64_t{1} << (r & 63);
    // Stale bits beyond rows() must be ignored.
    words.back() |= ~std::uint64_t{0} << (rows & 63);

    std::vector<double> from_bytes(cols, 0.0), from_words(cols, 0.0);
    xbar.read_currents(std::span<const std::uint8_t>(bytes), from_bytes);
    xbar.read_currents(std::span<const std::uint64_t>(words), from_words);
    for (std::size_t c = 0; c < cols; ++c)
      ASSERT_EQ(from_bytes[c], from_words[c]) << "col " << c;
  }
}

// ---------------------------------------------------- Mca window decoding --

// An MCA programmed at input offset k over input v must equal the same MCA
// at offset 0 over v shifted down by k — the window() decode is the only
// thing that differs, so this isolates the unaligned read path.
TEST(PackedKernels, McaAccumulateOffsetInvariance) {
  Rng rng(18);
  const std::size_t mca_size = 64;
  const std::size_t rows = 50, cols = 20;
  Matrix weights(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      weights.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));

  // Offsets straddle word boundaries (the unaligned cases).
  for (const std::size_t offset : {0u, 1u, 63u, 64u, 65u, 100u}) {
    const std::size_t input_len = offset + rows + 10;
    snn::SpikeVector full(input_len);
    snn::SpikeVector shifted(rows + 10);
    for (std::size_t i = 0; i < input_len; ++i)
      if (rng.bernoulli(0.35)) {
        full.set(i);
        if (i >= offset && i - offset < rows + 10) shifted.set(i - offset);
      }

    core::Mca at_offset(mca_size, tech::Memristor{tech::MemristorParams{}});
    core::Mca at_zero(mca_size, tech::Memristor{tech::MemristorParams{}});
    at_offset.program(weights, offset, 1.0f);
    at_zero.program(weights, 0, 1.0f);

    std::vector<float> acc_offset(cols, 0.0f), acc_zero(cols, 0.0f);
    const std::size_t n_offset = at_offset.accumulate(full, acc_offset);
    const std::size_t n_zero = at_zero.accumulate(shifted, acc_zero);
    EXPECT_EQ(n_offset, full.count_range(offset, offset + rows));
    EXPECT_EQ(n_offset, n_zero) << "offset=" << offset;
    EXPECT_EQ(acc_offset, acc_zero) << "offset=" << offset;
  }
}

}  // namespace
}  // namespace resparc
