// Contract tests of the static verifier (src/verify): every documented
// tamper class yields its exact diagnostic code, and every shipped
// strategy's output verifies clean at paper scale.  Codes (not message
// substrings) are the stable interface — docs/verification.md is the
// catalog these tests pin.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "compile/compiler.hpp"
#include "compile/program.hpp"
#include "snn/benchmarks.hpp"
#include "verify/verifier.hpp"

namespace resparc::verify {
namespace {

using compile::CompiledProgram;
using compile::Compiler;

// One compiled MNIST MLP at the default (MCA 64) configuration, shared
// read-only across tests; each tamper test works on its own copy.
const CompiledProgram& base_program() {
  static const CompiledProgram program = Compiler(core::default_config())
      .compile(snn::mnist_mlp().topology, "paper");
  return program;
}

std::string base_blob() {
  std::ostringstream os;
  base_program().save(os);
  return os.str();
}

// Replaces the first occurrence of `from` in `blob` (asserts it exists —
// a silent no-op would make the tamper test vacuous).
std::string tampered(std::string blob, const std::string& from,
                     const std::string& to) {
  const std::size_t pos = blob.find(from);
  EXPECT_NE(pos, std::string::npos) << "tamper anchor not found: " << from;
  if (pos != std::string::npos) blob.replace(pos, from.size(), to);
  return blob;
}

// The diagnostic code CompiledProgram::parse throws for `blob`, or "" when
// it parses clean.
std::string parse_code(const std::string& blob) {
  std::istringstream is(blob);
  try {
    CompiledProgram::parse(is, core::default_config());
    return "";
  } catch (const Error& e) {
    return e.code();
  }
}

// ----------------------------------------------------------- error codes --

TEST(ErrorCodes, RequireCarriesTheMachineReadableCode) {
  EXPECT_NO_THROW(require(true, "never thrown", "RV-TEST-NEVER"));
  try {
    require(false, "tested failure", "RV-TEST-CODE");
    FAIL() << "require(false) must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), "RV-TEST-CODE");
    EXPECT_NE(std::string(e.what()).find("tested failure"), std::string::npos);
  }
}

TEST(ErrorCodes, RequireWithoutCodeLeavesCodeEmpty) {
  try {
    require(false, "uncoded failure");
    FAIL() << "require(false) must throw";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code().empty());
  }
}

// ---------------------------------------------------------- clean outputs --

TEST(VerifyClean, CompiledProgramHasNoFindings) {
  const VerifyReport report = verify_program(base_program());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(VerifyClean, FreshBlobLintsCleanIncludingRoundTrip) {
  const VerifyReport report = verify_blob(base_blob(), core::default_config());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Every shipped strategy must produce verifiable programs at paper scale:
// both MNIST topologies across the MCA sweep the paper's figures use.
// (compile() already runs the verifier as a hard post-pass; asserting on
// an explicit report additionally pins that no *warnings* regress into
// errors silently.)
TEST(VerifyClean, AllStrategiesVerifyCleanAtPaperScale) {
  const snn::BenchmarkSpec specs[] = {snn::mnist_mlp(), snn::mnist_cnn()};
  for (const char* strategy :
       {"paper", "greedy-pack", "balanced", "anneal", "beam"}) {
    for (const auto& spec : specs) {
      for (const std::size_t mca : {64u, 128u, 256u}) {
        const core::ResparcConfig cfg = core::config_with_mca(mca);
        const CompiledProgram program =
            Compiler(cfg).compile(spec.topology, strategy);
        VerifyOptions options;
        options.topology = &spec.topology;
        const VerifyReport report = verify_program(program, options);
        EXPECT_TRUE(report.ok())
            << strategy << "/" << spec.topology.name() << "/mca" << mca
            << "\n" << report.to_string();
      }
    }
  }
}

TEST(VerifyClean, CommittedGoldenBlobVerifies) {
  const std::string path = std::string(RESPARC_SOURCE_DIR) +
                           "/tests/data/golden_mnist_mlp_mca64.rcp";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const VerifyReport report = verify_blob_auto(buffer.str());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --------------------------------------------------------- tampered blobs --

TEST(VerifyTamper, TruncatedHeaderIsMalformed) {
  EXPECT_EQ(parse_code(base_blob().substr(0, 10)), "RV-BLOB-MALFORMED");
}

TEST(VerifyTamper, TruncatedPayloadIsMalformed) {
  const std::string blob = base_blob();
  EXPECT_EQ(parse_code(blob.substr(0, blob.size() / 2)), "RV-BLOB-MALFORMED");
}

TEST(VerifyTamper, WrongVersionIsRejectedWithVersionCode) {
  const std::string blob =
      tampered(base_blob(), "resparc-compiled-program v3",
               "resparc-compiled-program v9");
  EXPECT_EQ(parse_code(blob), "RV-BLOB-VERSION");
}

TEST(VerifyTamper, TrailingBytesAreRejected) {
  EXPECT_EQ(parse_code(base_blob() + "surplus\n"), "RV-BLOB-TRAILING");
  // A trailing newline alone is NOT trailing bytes — whitespace-padding a
  // blob (editors do) must stay loadable.
  EXPECT_EQ(parse_code(base_blob() + "\n"), "");
}

TEST(VerifyTamper, CorruptedFingerprintIsACodedFinding) {
  const std::string blob = tampered(
      base_blob(), "fingerprint " +
          std::to_string(core::default_config().fingerprint()),
      "fingerprint 12345");
  EXPECT_EQ(parse_code(blob), "RV-CONS-FINGERPRINT");
  // The lint path reports the same code as a diagnostic instead of
  // throwing, and the auto sweep cannot bind 12345 to any standard
  // configuration.
  EXPECT_TRUE(verify_blob(blob, core::default_config())
                  .has("RV-CONS-FINGERPRINT"));
  EXPECT_TRUE(verify_blob_auto(blob).has("RV-CONS-FINGERPRINT"));
}

TEST(VerifyTamper, EditedRouteTableIsCaughtByTheRoutingPass) {
  // Bump one route's tree_hops: still parseable, but the H-tree maths no
  // longer re-derives (tree_hops must equal 2 * lca_height between cells).
  const std::string blob =
      tampered(base_blob(), "route 1 2 2 5 1 0 6 3 3",
               "route 1 2 2 5 1 0 7 3 3");
  ASSERT_EQ(parse_code(blob), "");  // parse alone accepts it...
  const VerifyReport report = verify_blob(blob, core::default_config());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("RV-ROUTE-TREE-HOPS")) << report.to_string();
  // ...which is exactly why load() runs the verifier.
  std::istringstream is(blob);
  try {
    CompiledProgram::load(is, core::default_config());
    FAIL() << "load() must reject the tampered route table";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.code(), "RV-ROUTE-TREE-HOPS");
  }
}

// ------------------------------------------------------ hand-built damage --

TEST(VerifyTamper, CapacityOverflowInAHandEditedMappingIsCaught) {
  CompiledProgram program = base_program();
  // Claim more crosspoints than the group's MCAs physically have
  // (mca_count * N^2) — a tiling-pass bug this verifier exists to catch.
  auto& group = program.mapping.layers[0].groups[0];
  group.synapses = group.mca_count *
      program.mapping.config.mca_size * program.mapping.config.mca_size + 1;
  const VerifyReport report = verify_program(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("RV-CAP-MCA-SYNAPSES")) << report.to_string();
}

TEST(VerifyTamper, DroppedRouteIsAStructureFinding) {
  CompiledProgram program = base_program();
  program.routes.boundaries.pop_back();
  const VerifyReport report = verify_program(program);
  EXPECT_TRUE(report.has("RV-STRUCT-ROUTE-COUNT")) << report.to_string();
}

TEST(VerifyTamper, InconsistentTotalsAreAConsistencyFinding) {
  CompiledProgram program = base_program();
  program.mapping.total_mcas += 1;
  const VerifyReport report = verify_program(program);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("RV-CONS-TOTALS")) << report.to_string();
}

// ------------------------------------------------------------- report API --

TEST(VerifyReportApi, CountsSeveritiesAndRaisesWithFirstErrorCode) {
  VerifyReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_NO_THROW(report.raise_if_errors("empty"));

  report.warning("RV-TEST-WARN", "here", "only a warning");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_NO_THROW(report.raise_if_errors("warnings only"));

  report.error("RV-TEST-FIRST", "layer 0", "first error");
  report.error("RV-TEST-SECOND", "layer 1", "second error");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_TRUE(report.has("RV-TEST-FIRST"));
  EXPECT_FALSE(report.has("RV-TEST-ABSENT"));
  try {
    report.raise_if_errors("test context");
    FAIL() << "raise_if_errors must throw with errors present";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.code(), "RV-TEST-FIRST");
    const std::string what = e.what();
    EXPECT_NE(what.find("test context"), std::string::npos);
    EXPECT_NE(what.find("RV-TEST-SECOND"), std::string::npos);
  }
}

TEST(VerifyReportApi, JsonDumpIsWellFormedEnoughToGrep) {
  VerifyReport report;
  report.error("RV-TEST-X", "boundary \"1\"", "quoted \"location\"");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("RV-TEST-X"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"location\\\""), std::string::npos) << json;
}

}  // namespace
}  // namespace resparc::verify
