// Unit tests for spike statistics (snn/stats.hpp).
#include "snn/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace resparc::snn {
namespace {

SpikeTrace make_trace(std::size_t layers, std::size_t neurons, std::size_t T) {
  SpikeTrace trace;
  trace.layers.resize(layers);
  for (auto& lt : trace.layers)
    for (std::size_t t = 0; t < T; ++t) lt.emplace_back(neurons);
  return trace;
}

TEST(PacketStats, AllZeroTrace) {
  SpikeTrace trace = make_trace(1, 128, 4);
  const PacketStats s = layer_packet_stats(trace, 0, 32);
  EXPECT_EQ(s.packets, 4u * 4u);
  EXPECT_EQ(s.zero_packets, s.packets);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 1.0);
}

TEST(PacketStats, SingleSpikeBreaksOnePacket) {
  SpikeTrace trace = make_trace(1, 128, 1);
  trace.layers[0][0].set(40);  // packet [32,64) at size 32
  const PacketStats s = layer_packet_stats(trace, 0, 32);
  EXPECT_EQ(s.packets, 4u);
  EXPECT_EQ(s.zero_packets, 3u);
}

TEST(PacketStats, ZeroFractionFallsWithPacketSize) {
  // The paper's section 5.3 observation: larger run lengths are less
  // likely to be all-zero.  Use random sparse spikes.
  SpikeTrace trace = make_trace(1, 1024, 8);
  Rng rng(1);
  for (auto& v : trace.layers[0])
    for (std::size_t i = 0; i < v.size(); ++i)
      if (rng.bernoulli(0.03)) v.set(i);
  double prev = 1.1;
  for (std::size_t bits : {32u, 64u, 128u}) {
    const double zf = layer_packet_stats(trace, 0, bits).zero_fraction();
    EXPECT_LT(zf, prev);
    prev = zf;
  }
}

TEST(PacketStats, TraceAggregatesLayers) {
  SpikeTrace trace = make_trace(2, 64, 2);
  trace.layers[1][0].set(0);
  const PacketStats all = trace_packet_stats(trace, 64);
  EXPECT_EQ(all.packets, 4u);
  EXPECT_EQ(all.zero_packets, 3u);
}

TEST(PacketStats, RejectsBadArgs) {
  SpikeTrace trace = make_trace(1, 64, 1);
  EXPECT_THROW(layer_packet_stats(trace, 0, 0), ConfigError);
  EXPECT_THROW(layer_packet_stats(trace, 5, 32), ConfigError);
}

TEST(Activity, MeanOverAllLayers) {
  SpikeTrace trace = make_trace(2, 10, 2);
  trace.layers[0][0].set(0);
  trace.layers[0][1].set(1);
  // 2 spikes / (2 layers * 10 neurons * 2 steps) = 0.05
  EXPECT_DOUBLE_EQ(mean_activity(trace), 0.05);
}

TEST(Activity, PerLayerVector) {
  SpikeTrace trace = make_trace(2, 10, 1);
  trace.layers[1][0].set(3);
  const auto acts = layer_activities(trace);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_DOUBLE_EQ(acts[0], 0.0);
  EXPECT_DOUBLE_EQ(acts[1], 0.1);
}

TEST(Activity, EmptyTraceIsZero) {
  SpikeTrace trace;
  EXPECT_DOUBLE_EQ(mean_activity(trace), 0.0);
}

}  // namespace
}  // namespace resparc::snn
