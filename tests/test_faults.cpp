// The device fault-injection layer end to end (docs/reliability.md):
// FaultModel's seeded determinism, the fault-free no-op guarantee (exact
// pre-layer goldens + fingerprint stability), cross-engine agreement of
// faulted replays, the compile-time repair pass with its RV-FAULT-*
// verifier passes, manifest surfacing, and the fleet Monte-Carlo
// harness's reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "api/fleet.hpp"
#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "common/error.hpp"
#include "compile/compiler.hpp"
#include "core/config.hpp"
#include "core/fault_injection.hpp"
#include "snn/benchmarks.hpp"
#include "tech/nonideal.hpp"
#include "verify/verifier.hpp"

namespace resparc {
namespace {

using tech::CellFault;
using tech::FaultConfig;
using tech::FaultModel;
using tech::McaFaults;

/// Exact weight equality of one layer across two networks.
bool same_weights(const snn::Network& a, const snn::Network& b,
                  std::size_t layer) {
  const auto fa = a.layer(layer).weights.flat();
  const auto fb = b.layer(layer).weights.flat();
  return fa.size() == fb.size() && std::equal(fa.begin(), fa.end(), fb.begin());
}

FaultConfig noisy_config() {
  FaultConfig f;
  f.enabled = true;
  f.chip_seed = 42;
  f.stuck_off_rate = 0.01;
  f.stuck_on_rate = 0.005;
  f.programming_sigma = 0.1;
  f.read_noise_sigma = 0.05;
  return f;
}

// ------------------------------------------------------------ FaultModel --

TEST(FaultModel, SamplingIsDeterministicPerChipAndSlot) {
  const FaultModel model(noisy_config(), 32);
  const McaFaults a = model.sample(7);
  const McaFaults b = model.sample(7);
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.stuck_off, b.stuck_off);
  EXPECT_EQ(a.stuck_on, b.stuck_on);

  // A different slot of the same chip draws different silicon ...
  EXPECT_NE(model.sample(8).cells, a.cells);
  // ... and so does the same slot of a different chip.
  FaultConfig other = noisy_config();
  other.chip_seed = 43;
  EXPECT_NE(FaultModel(other, 32).sample(7).cells, a.cells);
}

TEST(FaultModel, SampleCountsMatchesMaterializedSample) {
  const FaultModel model(noisy_config(), 32);
  for (std::size_t mca = 0; mca < 16; ++mca) {
    const McaFaults full = model.sample(mca);
    const McaFaults counts = model.sample_counts(mca);
    EXPECT_EQ(counts.stuck_off, full.stuck_off) << mca;
    EXPECT_EQ(counts.stuck_on, full.stuck_on) << mca;
    EXPECT_TRUE(counts.cells.empty());
    EXPECT_DOUBLE_EQ(model.stuck_density(mca), full.stuck_density());

    // The per-cell classes must be consistent with the counts.
    std::size_t off = 0, on = 0;
    for (const CellFault c : full.cells) {
      off += c == CellFault::kStuckOff;
      on += c == CellFault::kStuckOn;
    }
    EXPECT_EQ(off, full.stuck_off);
    EXPECT_EQ(on, full.stuck_on);
  }
}

TEST(FaultModel, StuckRatesScaleTheDrawnPopulation) {
  // Over many slots the realised stuck fraction must track the configured
  // rate (law of large numbers, generous 2x band).
  FaultConfig f;
  f.enabled = true;
  f.stuck_off_rate = 0.02;
  const FaultModel model(f, 64);
  std::size_t stuck = 0, cells = 0;
  for (std::size_t mca = 0; mca < 64; ++mca) {
    const McaFaults s = model.sample_counts(mca);
    stuck += s.stuck_off + s.stuck_on;
    cells += 64 * 64;
  }
  const double realised = static_cast<double>(stuck) / cells;
  EXPECT_GT(realised, 0.01);
  EXPECT_LT(realised, 0.04);
}

TEST(FaultModel, ValidateRejectsBadRates) {
  FaultConfig f;
  f.enabled = true;
  f.stuck_off_rate = -0.1;
  EXPECT_THROW(f.validate(), ConfigError);
  f = FaultConfig{};
  f.stuck_off_rate = 0.7;
  f.stuck_on_rate = 0.7;  // sum > 1: not a probability split
  EXPECT_THROW(f.validate(), ConfigError);
  f = FaultConfig{};
  f.programming_sigma = -1.0;
  EXPECT_THROW(f.validate(), ConfigError);
}

// ------------------------------------------------- fault-free no-op path --

TEST(FaultFree, DisabledConfigKeepsTheFingerprint) {
  const core::ResparcConfig base = core::default_config();
  core::ResparcConfig with_rates = base;
  with_rates.faults.stuck_off_rate = 0.1;
  with_rates.faults.programming_sigma = 0.3;
  with_rates.faults.chip_seed = 99;
  // A disabled fault block is inert: programs compiled before the
  // robustness layer existed must keep loading (same fingerprint).
  EXPECT_EQ(with_rates.fingerprint(), base.fingerprint());

  core::ResparcConfig enabled = with_rates;
  enabled.faults.enabled = true;
  EXPECT_NE(enabled.fingerprint(), base.fingerprint());
  // The chip seed is part of the silicon identity once enabled.
  core::ResparcConfig other_chip = enabled;
  other_chip.faults.chip_seed = 100;
  EXPECT_NE(other_chip.fingerprint(), enabled.fingerprint());
}

/// Shared golden workload: the exact replay numbers of the pre-layer
/// build (captured before fault injection existed); every engine must
/// still reproduce them bit for bit with faults disabled.
struct Golden {
  static constexpr double kEnergyPj = 6714.1407249999993;
  static constexpr double kLatencyNs = 790.0;
  static constexpr std::size_t kClassifications = 2;
};

api::Workload golden_workload() {
  api::PipelineOptions opt;
  opt.images = 2;
  opt.timesteps = 8;
  opt.seed = 7;
  opt.threads = 1;
  return api::Pipeline(opt)
      .dataset(snn::DatasetKind::kMnistLike)
      .topology(snn::small_mlp_topology(snn::DatasetKind::kMnistLike))
      .run();
}

TEST(FaultFree, ReplayMatchesPreLayerGoldensBitForBit) {
  const api::Workload w = golden_workload();
  for (const char* name :
       {"resparc-64", "resparc-64+packed", "resparc-64/greedy-pack+sparse"}) {
    const auto accel = api::make_accelerator(name);
    accel->load(w.topology());
    const api::ExecutionReport r = accel->execute(w.traces);
    EXPECT_EQ(r.energy_pj, Golden::kEnergyPj) << name;
    EXPECT_EQ(r.latency_ns, Golden::kLatencyNs) << name;
    EXPECT_EQ(r.classifications, Golden::kClassifications) << name;
    // No fault manifest on the pristine path.
    EXPECT_FALSE(r.faults.has_value()) << name;
  }
}

TEST(FaultFree, ZeroRatePerturbationIsIdentity) {
  // enabled=true with all rates zero must leave every weight untouched
  // (gain defaults to exactly 1.0, so double(v) * 1.0 == v).
  const api::Workload w = golden_workload();
  core::ResparcConfig config = core::config_with_mca(64);
  config.faults.enabled = true;
  config.faults.chip_seed = 42;
  compile::Compiler compiler(config);
  const compile::CompiledProgram program =
      compiler.compile(w.topology(), "paper");
  snn::Network net = w.network;
  core::perturb_network(net, program.mapping);
  for (std::size_t l = 0; l < net.layer_count(); ++l)
    EXPECT_TRUE(same_weights(net, w.network, l)) << "layer " << l;
}

// ------------------------------------------------ perturbation semantics --

TEST(FaultInjection, PerturbNetworkIsDeterministicAndSeedSensitive) {
  const api::Workload w = golden_workload();
  core::ResparcConfig config = core::config_with_mca(64);
  config.faults = noisy_config();
  compile::Compiler compiler(config);
  const compile::CompiledProgram program =
      compiler.compile(w.topology(), "paper");

  snn::Network a = w.network;
  snn::Network b = w.network;
  core::perturb_network(a, program.mapping);
  core::perturb_network(b, program.mapping);
  bool changed = false;
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    EXPECT_TRUE(same_weights(a, b, l)) << "layer " << l;
    changed = changed || !same_weights(a, w.network, l);
  }
  EXPECT_TRUE(changed) << "noisy perturbation left every weight untouched";

  // A different chip instance draws a different perturbation.
  core::ResparcConfig other = config;
  other.faults.chip_seed = 43;
  const compile::CompiledProgram program2 =
      compile::Compiler(other).compile(w.topology(), "paper");
  snn::Network c = w.network;
  core::perturb_network(c, program2.mapping);
  bool differs = false;
  for (std::size_t l = 0; l < a.layer_count(); ++l)
    differs = differs || !same_weights(a, c, l);
  EXPECT_TRUE(differs);
}

TEST(FaultInjection, EnginesAgreeOnFaultedReplays) {
  // The frozen per-cell fault state must make the dense, batched-packed
  // and sparse replay paths bit-for-bit identical under faults, exactly
  // as they are without them (tests/test_differential.cpp).
  const api::Workload w = golden_workload();
  api::BackendOptions options;
  options.resparc.faults = noisy_config();

  const auto dense = api::make_accelerator("resparc-64", options);
  dense->load(w.topology());
  const api::ExecutionReport ref = dense->execute(w.traces);
  ASSERT_TRUE(ref.faults.has_value());
  EXPECT_EQ(ref.faults->chip_seed, 42u);

  for (const char* name : {"resparc-64+packed", "resparc-64+sparse"}) {
    const auto accel = api::make_accelerator(name, options);
    accel->load(w.topology());
    const api::ExecutionReport r = accel->execute(w.traces);
    EXPECT_EQ(r.energy_pj, ref.energy_pj) << name;
    EXPECT_EQ(r.latency_ns, ref.latency_ns) << name;
    EXPECT_EQ(r.classifications, ref.classifications) << name;
    ASSERT_TRUE(r.faults.has_value()) << name;
    EXPECT_EQ(r.faults->stuck_off_cells, ref.faults->stuck_off_cells) << name;
    EXPECT_EQ(r.faults->stuck_on_cells, ref.faults->stuck_on_cells) << name;
    EXPECT_EQ(r.faults->failed_mpes, ref.faults->failed_mpes) << name;
  }
}

TEST(FaultInjection, StuckOnCellsRaiseReadEnergy) {
  // Stuck-at-G_max cells draw more read current than the mean-conductance
  // cost model's ideal cell: the analytic energy must go up.
  const api::Workload w = golden_workload();
  api::BackendOptions options;
  options.resparc.faults.enabled = true;
  options.resparc.faults.chip_seed = 5;
  options.resparc.faults.stuck_on_rate = 0.05;
  options.resparc.faults.failed_density = 1.0;  // keep every mPE placeable
  const auto faulty = api::make_accelerator("resparc-64", options);
  faulty->load(w.topology());
  const api::ExecutionReport r = faulty->execute(w.traces);
  ASSERT_TRUE(r.faults.has_value());
  EXPECT_GT(r.faults->stuck_on_cells, 0u);
  EXPECT_GT(r.energy_pj, Golden::kEnergyPj);
}

// ------------------------------------------------------- repair + verify --

TEST(FaultRepair, RepairPlacesAroundFailedMpesAndVerifies) {
  const api::Workload w = golden_workload();
  core::ResparcConfig config = core::config_with_mca(64);
  config.faults.enabled = true;
  config.faults.chip_seed = 1234;
  config.faults.stuck_off_rate = 0.01;
  // ~1.3 sigma above the binomial mean: roughly a tenth of the MCA slots
  // fail, enough to exercise repair while healthy spans stay plentiful.
  config.faults.failed_density = 0.012;

  const tech::ChipHealthMap health = [&] {
    compile::Compiler compiler(config);
    const compile::CompiledProgram program =
        compiler.compile(w.topology(), "paper");
    // With repair on, no layer may start on (or span) a failed mPE.
    const tech::ChipHealthMap h = core::derive_health(program.mapping);
    for (const core::LayerMapping& lm : program.mapping.layers)
      for (std::size_t m = lm.first_mpe; m < lm.first_mpe + lm.mpe_count; ++m)
        EXPECT_FALSE(h.failed(m)) << "layer " << lm.layer << " on mPE " << m;

    verify::VerifyOptions vo;
    vo.topology = &w.topology();
    const verify::VerifyReport report = verify::verify_program(program, vo);
    EXPECT_FALSE(report.has("RV-FAULT-FAILED-MPE"));
    EXPECT_NO_THROW(report.raise_if_errors("faulted program"));
    return h;
  }();
  ASSERT_GT(health.failed_count(), 0u)
      << "fault rates too low to exercise the repair pass";

  // Same chip without repair: the naive placement lands on failed mPEs
  // and the verifier flags every affected layer (warning severity — the
  // user explicitly opted out of repair).
  core::ResparcConfig no_repair = config;
  no_repair.faults.repair = false;
  compile::Compiler compiler(no_repair);
  const compile::CompiledProgram program =
      compiler.compile(w.topology(), "paper");
  const verify::VerifyReport report = verify::verify_program(program);
  EXPECT_TRUE(report.has("RV-FAULT-FAILED-MPE"));
  EXPECT_NO_THROW(report.raise_if_errors("repair disabled"));
}

TEST(FaultRepair, ImpossibleChipFailsCompileWithMappingError) {
  // At a 30% stuck rate with a near-zero density threshold effectively
  // every mPE on the chip is failed; the repair search must give up with
  // a diagnosable MappingError rather than ship a placement.
  const api::Workload w = golden_workload();
  core::ResparcConfig config = core::config_with_mca(64);
  config.faults.enabled = true;
  config.faults.chip_seed = 9;
  config.faults.stuck_off_rate = 0.3;
  config.faults.failed_density = 0.0005;
  compile::Compiler compiler(config);
  EXPECT_THROW(compiler.compile(w.topology(), "paper"), MappingError);
}

// ------------------------------------------------------------- fleet MC --

TEST(Fleet, RunIsDeterministicAcrossInvocationsAndThreadCounts) {
  api::FleetOptions opt;
  opt.chips = 6;
  opt.images = 3;
  opt.timesteps = 6;
  opt.faults.stuck_off_rate = 0.005;
  opt.faults.programming_sigma = 0.1;

  const api::FleetReport a = api::run_fleet(opt);
  opt.threads = 1;
  const api::FleetReport b = api::run_fleet(opt);
  ASSERT_EQ(a.chips.size(), b.chips.size());
  EXPECT_EQ(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_EQ(a.yield, b.yield);
  for (std::size_t c = 0; c < a.chips.size(); ++c) {
    EXPECT_EQ(a.chips[c].chip_seed, b.chips[c].chip_seed) << c;
    EXPECT_EQ(a.chips[c].accuracy, b.chips[c].accuracy) << c;
    EXPECT_EQ(a.chips[c].energy_uj, b.chips[c].energy_uj) << c;
  }
  // Distinct chips drew distinct silicon.
  EXPECT_NE(a.chips[0].chip_seed, a.chips[1].chip_seed);
}

TEST(Fleet, ZeroFaultFleetReproducesTheBaselineExactly) {
  api::FleetOptions opt;
  opt.chips = 4;
  opt.images = 3;
  opt.timesteps = 6;
  const api::FleetReport fleet = api::run_fleet(opt);
  EXPECT_EQ(fleet.yield, 1.0);
  for (const api::FleetChip& chip : fleet.chips) {
    EXPECT_TRUE(chip.ok);
    EXPECT_EQ(chip.accuracy, fleet.baseline_accuracy);
    EXPECT_EQ(chip.energy_uj, fleet.baseline_energy_uj);
    EXPECT_EQ(chip.failed_mpes, 0u);
    EXPECT_EQ(chip.stuck_cells, 0u);
  }
  EXPECT_EQ(fleet.acc_p50, fleet.baseline_accuracy);
}

TEST(Fleet, QuantilesUseNearestRank) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(api::nearest_rank(v, 0.0), 1.0);
  EXPECT_EQ(api::nearest_rank(v, 0.25), 1.0);
  EXPECT_EQ(api::nearest_rank(v, 0.5), 2.0);
  EXPECT_EQ(api::nearest_rank(v, 0.75), 3.0);
  EXPECT_EQ(api::nearest_rank(v, 1.0), 4.0);
  EXPECT_EQ(api::nearest_rank({}, 0.5), 0.0);
}

TEST(Fleet, RejectsDegenerateOptions) {
  api::FleetOptions opt;
  opt.chips = 0;
  EXPECT_THROW(api::run_fleet(opt), ConfigError);
  opt = {};
  opt.images = 0;
  EXPECT_THROW(api::run_fleet(opt), ConfigError);
}

}  // namespace
}  // namespace resparc
