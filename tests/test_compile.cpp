// Tests of the compile layer (src/compile): strategy registry, pass
// pipeline, cost model, CompiledProgram serialization, and bit-for-bit
// parity of the "paper" strategy with the legacy mapper.
#include <gtest/gtest.h>

#include <sstream>

#include "api/backends.hpp"
#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "compile/compiler.hpp"
#include "compile/cost_model.hpp"
#include "compile/program.hpp"
#include "compile/strategy.hpp"
#include "core/resparc.hpp"
#include "snn/benchmarks.hpp"

namespace resparc::compile {
namespace {

using core::Mapping;
using snn::LayerSpec;
using snn::Topology;

void expect_mappings_equal(const Mapping& a, const Mapping& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.total_mcas, b.total_mcas);
  EXPECT_EQ(a.total_mpes, b.total_mpes);
  EXPECT_EQ(a.total_neurocells, b.total_neurocells);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    const core::LayerMapping& x = a.layers[l];
    const core::LayerMapping& y = b.layers[l];
    EXPECT_EQ(x.mca_count, y.mca_count) << "layer " << l;
    EXPECT_EQ(x.mpe_count, y.mpe_count) << "layer " << l;
    EXPECT_EQ(x.mux_degree, y.mux_degree) << "layer " << l;
    EXPECT_EQ(x.mux_cycles, y.mux_cycles) << "layer " << l;
    EXPECT_EQ(x.ccu_transfers_per_neuron, y.ccu_transfers_per_neuron);
    EXPECT_EQ(x.synapses, y.synapses) << "layer " << l;
    EXPECT_EQ(x.first_mpe, y.first_mpe) << "layer " << l;
    EXPECT_EQ(x.first_nc, y.first_nc) << "layer " << l;
    EXPECT_EQ(x.last_nc, y.last_nc) << "layer " << l;
    ASSERT_EQ(x.groups.size(), y.groups.size()) << "layer " << l;
    for (std::size_t g = 0; g < x.groups.size(); ++g) {
      EXPECT_EQ(x.groups[g].slice.kind, y.groups[g].slice.kind);
      EXPECT_EQ(x.groups[g].slice.begin, y.groups[g].slice.begin);
      EXPECT_EQ(x.groups[g].slice.end, y.groups[g].slice.end);
      EXPECT_EQ(x.groups[g].slice.y0, y.groups[g].slice.y0);
      EXPECT_EQ(x.groups[g].slice.y1, y.groups[g].slice.y1);
      EXPECT_EQ(x.groups[g].slice.x0, y.groups[g].slice.x0);
      EXPECT_EQ(x.groups[g].slice.x1, y.groups[g].slice.x1);
      EXPECT_EQ(x.groups[g].mca_count, y.groups[g].mca_count);
      EXPECT_EQ(x.groups[g].rows_used, y.groups[g].rows_used);
      EXPECT_EQ(x.groups[g].cols_used, y.groups[g].cols_used);
      EXPECT_EQ(x.groups[g].synapses, y.groups[g].synapses);
    }
  }
}

// ---------------------------------------------------------------- registry --

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  const auto names = registered_strategies();
  for (const char* expected :
       {"paper", "greedy-pack", "balanced", "anneal", "beam"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_TRUE(strategy_exists("paper"));
  EXPECT_FALSE(strategy_exists("no-such-strategy"));
}

TEST(StrategyRegistry, UnknownNameThrowsListingAlternatives) {
  try {
    make_strategy("no-such-strategy");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-strategy"), std::string::npos);
    EXPECT_NE(what.find("paper"), std::string::npos);
    EXPECT_NE(what.find("greedy-pack"), std::string::npos);
    // The search strategies must be discoverable from the message too.
    EXPECT_NE(what.find("anneal"), std::string::npos);
    EXPECT_NE(what.find("beam"), std::string::npos);
  }
}

TEST(StrategyRegistry, CustomStrategyIsCreatable) {
  register_strategy("test-paper-copy",
                    [] { return make_strategy("paper"); });
  const auto strategy = make_strategy("test-paper-copy");
  EXPECT_EQ(strategy->name(), "paper");
}

TEST(StrategyRegistry, AutoIsReserved) {
  // "auto" is intercepted by Compiler::compile before the registry, so a
  // strategy registered under it could never be dispatched.
  EXPECT_THROW(register_strategy("auto", [] { return make_strategy("paper"); }),
               ConfigError);
}

// ------------------------------------------------------------ paper parity --

TEST(CompilerPaper, ReproducesLegacyMapperExactly) {
  for (const auto& spec : snn::paper_benchmarks()) {
    for (const std::size_t mca : {32u, 64u, 128u}) {
      const core::ResparcConfig cfg = core::config_with_mca(mca);
      const Mapping legacy = core::map_network(spec.topology, cfg);
      const CompiledProgram program =
          Compiler(cfg).compile(spec.topology, "paper");
      expect_mappings_equal(program.mapping, legacy);
    }
  }
}

TEST(CompilerPaper, ProgramCarriesProvenance) {
  const auto spec = snn::mnist_mlp();
  const core::ResparcConfig cfg = core::default_config();
  const CompiledProgram p = Compiler(cfg).compile(spec.topology, "paper");
  EXPECT_EQ(p.strategy, "paper");
  EXPECT_EQ(p.topology_name, spec.topology.name());
  EXPECT_EQ(p.config_fingerprint, cfg.fingerprint());
  ASSERT_EQ(p.report.size(), spec.topology.layer_count());
  EXPECT_EQ(p.report[0].kind, "dense");
  EXPECT_GT(p.report[0].utilization, 0.0);
  EXPECT_GT(p.cost.energy_pj_per_step, 0.0);
  EXPECT_GT(p.cost.cycles_per_step, 0.0);
}

// -------------------------------------------------------------- legalize ----

TEST(CompilerPasses, LegalizeRejectsUnmappableTopology) {
  // Topology construction itself rejects zero-size layers, so legalize is
  // exercised through the compiler's config validation path.
  const auto spec = snn::mnist_mlp();
  core::ResparcConfig bad = core::default_config();
  bad.mca_size = 4;  // below the documented [8,1024] domain
  EXPECT_THROW(Compiler{bad}, ConfigError);
}

TEST(Compiler, UnknownStrategyThrows) {
  const auto spec = snn::mnist_mlp();
  EXPECT_THROW(Compiler(core::default_config())
                   .compile(spec.topology, "no-such-strategy"),
               CompileError);
}

// ---------------------------------------------------------- new strategies --

TEST(GreedyPack, BeatsPaperOnCnnUtilizationAtMca128) {
  // The acceptance bar of this PR: greedy-pack must beat the paper mapping
  // on CNN crossbar utilisation at MCA-128.
  const auto spec = snn::mnist_cnn();
  const core::ResparcConfig cfg = core::config_with_mca(128);
  const Compiler compiler(cfg);
  const CompiledProgram paper = compiler.compile(spec.topology, "paper");
  const CompiledProgram greedy = compiler.compile(spec.topology, "greedy-pack");
  EXPECT_GT(greedy.mapping.utilization, paper.mapping.utilization);
  EXPECT_LT(greedy.mapping.total_mcas, paper.mapping.total_mcas);
}

TEST(GreedyPack, PreservesSynapsesOnEveryBenchmark) {
  for (const auto& spec : snn::paper_benchmarks()) {
    for (const std::size_t mca : {32u, 64u, 128u}) {
      const CompiledProgram p = Compiler(core::config_with_mca(mca))
                                    .compile(spec.topology, "greedy-pack");
      std::size_t synapses = 0;
      for (const auto& lm : p.mapping.layers) synapses += lm.synapses;
      EXPECT_EQ(synapses, spec.topology.synapse_count())
          << spec.topology.name() << " N=" << mca;
      EXPECT_LE(p.mapping.utilization, 1.0 + 1e-9);
      p.check_matches(spec.topology);  // must not throw
    }
  }
}

TEST(GreedyPack, PacksMcasAcrossLayerBoundaries) {
  // Two 2-MCA layers on 4-MCA mPEs: paper placement starts each layer on a
  // fresh mPE (2 mPEs); greedy-pack shares one.
  Topology t("pack", Shape3{1, 1, 64},
             {LayerSpec::dense(65), LayerSpec::dense(64)});
  const core::ResparcConfig cfg = core::config_with_mca(64);
  const Compiler compiler(cfg);
  const CompiledProgram paper = compiler.compile(t, "paper");
  const CompiledProgram greedy = compiler.compile(t, "greedy-pack");
  EXPECT_EQ(paper.mapping.layers[0].mca_count, 2u);
  EXPECT_EQ(paper.mapping.layers[1].mca_count, 2u);
  EXPECT_EQ(paper.mapping.total_mpes, 2u);
  EXPECT_EQ(greedy.mapping.total_mpes, 1u);
}

TEST(Balanced, NeverMoreBusBoundariesThanPaper) {
  for (const auto& spec : snn::paper_benchmarks()) {
    for (const std::size_t mca : {32u, 64u, 128u}) {
      const Compiler compiler(core::config_with_mca(mca));
      const CompiledProgram paper = compiler.compile(spec.topology, "paper");
      const CompiledProgram balanced =
          compiler.compile(spec.topology, "balanced");
      EXPECT_LE(balanced.cost.bus_boundaries, paper.cost.bus_boundaries)
          << spec.topology.name() << " N=" << mca;
    }
  }
}

TEST(Balanced, AlignsStraddlingLayerToAFreshNeurocell) {
  // 192-wide dense layers are 9 MCAs = 3 mPEs each: the sixth layer would
  // straddle mPE 15/16 (the NeuroCell edge); balanced pushes it to
  // NeuroCell 1 so the following boundary stays on the switch fabric.
  std::vector<LayerSpec> layers(7, LayerSpec::dense(192));
  Topology t("straddle", Shape3{1, 1, 192}, layers);
  const core::ResparcConfig cfg = core::config_with_mca(64);
  const Compiler compiler(cfg);
  const CompiledProgram paper = compiler.compile(t, "paper");
  const CompiledProgram balanced = compiler.compile(t, "balanced");
  EXPECT_LT(balanced.cost.bus_boundaries, paper.cost.bus_boundaries);
  for (const auto& lm : balanced.mapping.layers)
    EXPECT_EQ(lm.first_nc, lm.last_nc) << "layer " << lm.layer;
}

// --------------------------------------------------------------- cost model --

TEST(CostModel, ScoresTrackMcaSizeTradeoffOnCnn) {
  // Fig. 12(c) mechanism, seen analytically: CNN utilisation falls as the
  // array grows, so the estimated per-step energy per synapse rises.
  const auto spec = snn::mnist_cnn();
  const CostEstimate c32 =
      Compiler(core::config_with_mca(32)).compile(spec.topology, "paper").cost;
  const CostEstimate c128 =
      Compiler(core::config_with_mca(128)).compile(spec.topology, "paper").cost;
  EXPECT_GT(c32.utilization, c128.utilization);
}

TEST(CostModel, RejectsBadActivity) {
  const auto spec = snn::mnist_mlp();
  const core::ResparcConfig cfg = core::default_config();
  const Mapping m = core::map_network(spec.topology, cfg);
  EXPECT_THROW(estimate_cost(spec.topology, m, 0.0), ConfigError);
  EXPECT_THROW(estimate_cost(spec.topology, m, 1.5), ConfigError);
}

TEST(CompilerAuto, PicksTheBestScoringStrategy) {
  const auto spec = snn::mnist_cnn();
  const Compiler compiler(core::config_with_mca(64));
  const CompiledProgram best = compiler.compile(spec.topology, "auto");
  for (const std::string& name : registered_strategies()) {
    const CompiledProgram p = compiler.compile(spec.topology, name);
    EXPECT_LE(best.cost.score(), p.cost.score()) << name;
  }
}

// ------------------------------------------------------------ serialization --

TEST(ProgramSerialization, RoundTripsThroughAStream) {
  const auto spec = snn::mnist_cnn();
  const core::ResparcConfig cfg = core::config_with_mca(64);
  const CompiledProgram p = Compiler(cfg).compile(spec.topology, "greedy-pack");

  std::stringstream ss;
  p.save(ss);
  const CompiledProgram q = CompiledProgram::load(ss, cfg);

  EXPECT_EQ(q.strategy, p.strategy);
  EXPECT_EQ(q.topology_name, p.topology_name);
  EXPECT_EQ(q.config_fingerprint, p.config_fingerprint);
  EXPECT_EQ(q.cost.bus_boundaries, p.cost.bus_boundaries);
  EXPECT_DOUBLE_EQ(q.cost.energy_pj_per_step, p.cost.energy_pj_per_step);
  ASSERT_EQ(q.report.size(), p.report.size());
  for (std::size_t i = 0; i < q.report.size(); ++i) {
    EXPECT_EQ(q.report[i].kind, p.report[i].kind);
    EXPECT_EQ(q.report[i].mcas, p.report[i].mcas);
    EXPECT_DOUBLE_EQ(q.report[i].utilization, p.report[i].utilization);
  }
  expect_mappings_equal(q.mapping, p.mapping);
}

TEST(ProgramSerialization, RoundTripsThroughAFile) {
  const auto spec = snn::mnist_mlp();
  const core::ResparcConfig cfg = core::default_config();
  const CompiledProgram p = Compiler(cfg).compile(spec.topology, "balanced");

  const std::string path = ::testing::TempDir() + "/mnist_mlp.rcp";
  ASSERT_TRUE(p.save_file(path));
  const CompiledProgram q = CompiledProgram::load_file(path, cfg);
  expect_mappings_equal(q.mapping, p.mapping);
  EXPECT_EQ(q.strategy, "balanced");
}

TEST(ProgramSerialization, RejectsConfigFingerprintMismatch) {
  const auto spec = snn::mnist_mlp();
  const core::ResparcConfig cfg = core::default_config();
  const CompiledProgram p = Compiler(cfg).compile(spec.topology, "paper");

  std::stringstream ss;
  p.save(ss);
  core::ResparcConfig other = cfg;
  other.mca_size = 128;
  EXPECT_THROW(CompiledProgram::load(ss, other), CompileError);

  // Subtler drift must also be caught: a different device technology.
  std::stringstream ss2;
  p.save(ss2);
  core::ResparcConfig tech_drift = cfg;
  tech_drift.technology.memristor.r_on_ohm *= 2.0;
  EXPECT_THROW(CompiledProgram::load(ss2, tech_drift), CompileError);
}

TEST(ProgramSerialization, RejectsGarbage) {
  std::stringstream ss("not a program at all");
  EXPECT_THROW(CompiledProgram::load(ss, core::default_config()),
               CompileError);
}

TEST(ProgramSerialization, RejectsImplausibleCounts) {
  // A corrupt count must fail as CompileError before anything tries to
  // reserve memory for it.
  const core::ResparcConfig cfg = core::default_config();
  const CompiledProgram p = Compiler(cfg).compile(snn::mnist_mlp().topology,
                                                  "paper");
  std::stringstream out;
  p.save(out);
  std::string text = out.str();
  const std::string needle = "layers 3";
  const auto at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "layers 99999999999999");
  std::stringstream in(text);
  EXPECT_THROW(CompiledProgram::load(in, cfg), CompileError);
}

TEST(ProgramSerialization, LoadedProgramRejectsWrongTopology) {
  const core::ResparcConfig cfg = core::default_config();
  const CompiledProgram p =
      Compiler(cfg).compile(snn::mnist_mlp().topology, "paper");
  core::ResparcChip chip(cfg);
  EXPECT_THROW(chip.load(snn::svhn_mlp().topology, p), CompileError);
}

// ------------------------------------------------- chip / backend execution --

class CompiledWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::PipelineOptions opt;
    opt.images = 2;
    opt.timesteps = 6;
    opt.seed = 17;
    opt.threads = 1;
    workload_ = new api::Workload(api::Pipeline(opt)
                                      .dataset(snn::DatasetKind::kMnistLike)
                                      .topology(snn::small_mlp_topology(
                                          snn::DatasetKind::kMnistLike))
                                      .run());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static api::Workload* workload_;
};

api::Workload* CompiledWorkload::workload_ = nullptr;

TEST_F(CompiledWorkload, DeserializedProgramExecutesIdentically) {
  const api::Workload& w = *workload_;
  const core::ResparcConfig cfg = core::default_config();

  const CompiledProgram fresh =
      Compiler(cfg).compile(w.topology(), "greedy-pack");
  std::stringstream ss;
  fresh.save(ss);
  const CompiledProgram restored = CompiledProgram::load(ss, cfg);

  core::ResparcChip a(cfg);
  a.load(w.topology(), fresh);
  core::ResparcChip b(cfg);
  b.load(w.topology(), restored);

  const core::RunReport ra = a.execute(w.traces);
  const core::RunReport rb = b.execute(w.traces);
  EXPECT_EQ(ra.energy.total_pj(), rb.energy.total_pj());
  EXPECT_EQ(ra.energy.crossbar_pj, rb.energy.crossbar_pj);
  EXPECT_EQ(ra.perf.cycles_pipelined, rb.perf.cycles_pipelined);
  EXPECT_EQ(ra.events.mca_activations, rb.events.mca_activations);
  EXPECT_EQ(ra.events.bus_words, rb.events.bus_words);
}

TEST_F(CompiledWorkload, ChipLoadIsThePaperStrategy) {
  const api::Workload& w = *workload_;
  const core::ResparcConfig cfg = core::default_config();

  core::ResparcChip legacy(cfg);
  legacy.load(w.topology());
  EXPECT_EQ(legacy.program().strategy, "paper");

  core::ResparcChip compiled(cfg);
  compiled.load(w.topology(), Compiler(cfg).compile(w.topology(), "paper"));

  const core::RunReport a = legacy.execute(w.traces);
  const core::RunReport b = compiled.execute(w.traces);
  EXPECT_EQ(a.energy.total_pj(), b.energy.total_pj());
  EXPECT_EQ(a.perf.cycles_pipelined, b.perf.cycles_pipelined);
  EXPECT_EQ(a.events.bus_words, b.events.bus_words);
}

TEST_F(CompiledWorkload, StrategySuffixSelectsTheStrategy) {
  const api::Workload& w = *workload_;

  const auto accel = api::make_accelerator("resparc-64/greedy-pack");
  EXPECT_EQ(accel->name(), "RESPARC-64/greedy-pack");
  accel->load(w.topology());
  const auto* backend = dynamic_cast<const api::ResparcBackend*>(accel.get());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->strategy(), "greedy-pack");
  EXPECT_EQ(backend->program().strategy, "greedy-pack");

  api::BackendOptions options;
  options.strategy = "balanced";
  const auto via_options = api::make_accelerator("resparc", options);
  EXPECT_EQ(via_options->name(), "RESPARC-64/balanced");
}

TEST_F(CompiledWorkload, LoadProgramUpdatesStrategyAndName) {
  const api::Workload& w = *workload_;
  const core::ResparcConfig cfg = core::default_config();
  api::ResparcBackend backend(cfg);  // constructed as "paper"
  backend.load_program(w.topology(),
                       Compiler(cfg).compile(w.topology(), "greedy-pack"));
  EXPECT_EQ(backend.strategy(), "greedy-pack");
  EXPECT_EQ(backend.name(), "RESPARC-64/greedy-pack");
}

TEST_F(CompiledWorkload, AutoStrategyReportsTheWinnerOnceLoaded) {
  const api::Workload& w = *workload_;
  api::ResparcBackend backend(core::default_config(), "auto");
  EXPECT_EQ(backend.strategy(), "auto");  // not yet resolved
  backend.load(w.topology());
  EXPECT_NE(backend.strategy(), "auto");  // the winning strategy, not the policy
  EXPECT_EQ(backend.strategy(), backend.program().strategy);
}

TEST_F(CompiledWorkload, StrategiesAgreeOnSpikeSemantics) {
  // Different mappings re-shuffle hardware events, never spikes: the traced
  // neuron counts each strategy integrates must match.
  const api::Workload& w = *workload_;
  std::vector<std::size_t> fires;
  for (const std::string& strategy : registered_strategies()) {
    api::ResparcBackend backend(core::default_config(), strategy);
    backend.load(w.topology());
    const api::ExecutionReport r = backend.execute(w.traces);
    ASSERT_TRUE(r.resparc.has_value());
    fires.push_back(r.resparc->events.neuron_fires);
  }
  for (const std::size_t f : fires) EXPECT_EQ(f, fires.front());
}

}  // namespace
}  // namespace resparc::compile
