// Persistent ThreadPool semantics (common/thread_pool.hpp): exactly-once
// execution, worker ids, job reuse, nested-call degradation, the
// parallel_for wrapper, and — the satellite this PR fixes — prompt
// cooperative cancellation after a worker throws (the legacy spawn-per-
// call pool let surviving workers drain the whole counter).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/pipeline.hpp"
#include "common/thread_pool.hpp"
#include "snn/benchmarks.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace resparc {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h = 0;
    pool.run_indexed(count, 0, [&](std::size_t i, std::size_t) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(hits[i], 1) << "index " << i << " of " << count;
  }
}

TEST(ThreadPool, WorkerIdsAreStableAndInRange) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.width(), 4u);
  std::vector<std::atomic<int>> by_worker(pool.width());
  for (auto& c : by_worker) c = 0;
  pool.run_indexed(512, 0, [&](std::size_t, std::size_t worker) {
    ASSERT_LT(worker, pool.width());
    ++by_worker[worker];
  });
  int total = 0;
  for (auto& c : by_worker) total += c;
  EXPECT_EQ(total, 512);
}

TEST(ThreadPool, MaxWorkersCapsParticipation) {
  ThreadPool pool(8);
  std::atomic<int> max_seen{0};
  pool.run_indexed(256, 2, [&](std::size_t, std::size_t worker) {
    int seen = static_cast<int>(worker);
    int cur = max_seen.load();
    while (seen > cur && !max_seen.compare_exchange_weak(cur, seen)) {
    }
  });
  // Worker ids are dense from 0: a cap of 2 admits ids {0, 1} only.
  EXPECT_LT(max_seen.load(), 2);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int job = 0; job < 50; ++job)
    pool.run_indexed(100, 0,
                     [&](std::size_t i, std::size_t) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2L));
}

TEST(ThreadPool, NestedCallRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_items{0};
  pool.run_indexed(8, 0, [&](std::size_t, std::size_t) {
    pool.run_indexed(4, 0,
                     [&](std::size_t, std::size_t) { ++inner_items; });
  });
  EXPECT_EQ(inner_items.load(), 32);
}

TEST(ThreadPool, ExceptionPropagatesAndCancelsPromptly) {
  ThreadPool pool(4);
  // A huge job whose very first item throws: with cooperative
  // cancellation the surviving workers must stop claiming almost
  // immediately instead of draining the remaining ~10^6 items.
  const std::size_t count = 1u << 20;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      pool.run_indexed(count, 0,
                       [&](std::size_t i, std::size_t) {
                         if (i == 0) throw std::runtime_error("boom");
                         ++executed;
                       }),
      std::runtime_error);
  // Generous bound: anything close to `count` means cancellation failed.
  // (One chunk per worker may complete before the flag is seen.)
  EXPECT_LT(executed.load(), count / 4);
}

TEST(ThreadPool, ParallelForMatchesSerialAndRethrows) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    std::vector<int> out(1000, 0);
    parallel_for(out.size(), threads,
                 [&](std::size_t i) { out[i] = static_cast<int>(i % 7); });
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<int>(i % 7));
  }
  EXPECT_THROW(parallel_for(64, 4,
                            [](std::size_t i) {
                              if (i == 13) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, WithinTracePartitioningIsBitForBit) {
  // A simulator spreading its per-layer scatter over pool partitions must
  // produce the exact trace of the serial run (the partitioned scatter is
  // element-order preserving; docs/performance.md).
  const snn::Topology topo =
      snn::small_cnn_topology(snn::DatasetKind::kMnistLike);
  snn::Network net(topo);
  Rng wrng(31);
  net.init_random(wrng, 1.0f);
  net.set_uniform_threshold(1.2);
  std::vector<float> img(topo.input_shape().size());
  for (auto& p : img) p = static_cast<float>(wrng.uniform(0.0, 1.0));

  snn::SimConfig cfg;
  cfg.timesteps = 5;
  snn::Simulator serial(net, cfg);
  Rng r1(32);
  const snn::SimResult want = serial.run(img, r1);

  ThreadPool pool(4);
  snn::Simulator pooled(net, cfg);
  pooled.set_pool(&pool, 0, /*min_outputs=*/1);  // partition every layer
  Rng r2(32);
  const snn::SimResult got = pooled.run(img, r2);

  EXPECT_EQ(got.output_spike_counts, want.output_spike_counts);
  EXPECT_EQ(got.total_spikes, want.total_spikes);
  ASSERT_EQ(got.trace.layers.size(), want.trace.layers.size());
  for (std::size_t l = 0; l < want.trace.layers.size(); ++l) {
    for (std::size_t t = 0; t < want.trace.layers[l].size(); ++t) {
      const auto a = got.trace.layers[l][t].words();
      const auto b = want.trace.layers[l][t].words();
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "layer " << l << " step " << t;
    }
  }
}

TEST(ThreadPool, PipelineSinglePresentationUsesPoolDeterministically) {
  // n == 1 routes the requested parallelism inside the trace; the
  // workload must equal the threads=1 run bit-for-bit.
  api::PipelineOptions opt;
  opt.images = 1;
  opt.timesteps = 6;
  opt.threads = 1;
  const auto spec = snn::mnist_cnn();
  const api::Workload serial = api::Pipeline(opt).benchmark(spec).run();
  opt.threads = 4;
  const api::Workload pooled = api::Pipeline(opt).benchmark(spec).run();
  ASSERT_EQ(serial.traces.size(), pooled.traces.size());
  EXPECT_EQ(serial.predicted, pooled.predicted);
  for (std::size_t l = 0; l < serial.traces[0].layers.size(); ++l) {
    for (std::size_t t = 0; t < serial.traces[0].layers[l].size(); ++t) {
      const auto a = serial.traces[0].layers[l][t].words();
      const auto b = pooled.traces[0].layers[l][t].words();
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "layer " << l << " step " << t;
    }
  }
}

TEST(ThreadPool, ConcurrentProducersManySmallBursts) {
  // The serving layer's pattern: several producer threads each submitting
  // a tight stream of small jobs to one shared pool.  Every item must run
  // exactly once AND admission must be fair: with tickets every queued
  // producer is admitted in arrival order, so each completes a healthy
  // share of jobs inside the window (pre-ticket, neither CV wakeups nor
  // mutex acquisition carried any ordering, and a tight-loop producer
  // could win the admission race indefinitely).  The deadline-based
  // window keeps the assertion immune to thread start-up jitter, which
  // on an idle machine can exceed a whole burst of tiny jobs.
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kCount = 16;
  constexpr long long kPerJob =
      static_cast<long long>(kCount) * (kCount + 1) / 2;

  std::atomic<int> ready{0};
  std::array<std::atomic<long long>, kProducers> sums{};
  std::array<std::atomic<int>, kProducers> jobs{};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      ++ready;
      while (ready.load() < kProducers) std::this_thread::yield();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
      while (std::chrono::steady_clock::now() < deadline) {
        pool.run_indexed(kCount, 0, [&](std::size_t i, std::size_t) {
          sums[p].fetch_add(static_cast<long long>(i) + 1,
                            std::memory_order_relaxed);
        });
        jobs[p].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(sums[p].load(), jobs[p].load() * kPerJob)
        << "producer " << p << " lost or duplicated items";
    // Thousands of jobs fit in the window; a starved producer completes
    // (near) zero.  The floor is deliberately generous so slow machines
    // and sanitizer builds stay green.
    EXPECT_GE(jobs[p].load(), 10) << "producer " << p << " was starved";
  }
}

TEST(ThreadPool, AdmissionIsFifoUnderContention) {
  // Occupy the pool with a long job, queue three producers at spaced
  // intervals, and check they are admitted in arrival order.
  ThreadPool pool(2);
  std::mutex order_mutex;
  std::vector<int> order;

  std::thread blocker([&] {
    pool.run_indexed(8, 2, [](std::size_t, std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(0);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::vector<std::thread> producers;
  for (int p = 1; p <= 3; ++p) {
    producers.emplace_back([&, p] {
      // The ticket is drawn as soon as run_indexed reaches the mutex, so
      // the launch stagger below fixes the admission order.
      pool.run_indexed(4, 2, [](std::size_t, std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(p);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  blocker.join();
  for (auto& t : producers) t.join();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace resparc
